"""Semantic checker: types, labels, calls, and definite assignment.

Runs after parsing and before anything consumes a module.  Beyond type
checking, it enforces *definite assignment* (every variable read is
assigned on every path from function entry), which is what lets the
interpreter and the lowered ISA program agree exactly: neither ever
observes an uninitialized value, so the language needs no default.
"""

from __future__ import annotations

from repro.lang.ast import (
    BOOL,
    CONTROL_OPS,
    EFFECT_OP_SIGNATURES,
    Function,
    Instr,
    Label,
    Module,
    VALUE_OP_SIGNATURES,
)
from repro.lang.parser import LangError
from repro.lang.passes.cfg import build_cfg, definitely_assigned

#: Inlining (and therefore lowering) renames with this prefix; user code
#: must stay out of the namespace so inlined programs cannot collide.
RESERVED_PREFIX = "__"


def check_module(module: Module, allow_reserved: bool = False) -> Module:
    """Validate a parsed module; returns it unchanged on success.

    Raises :class:`LangError` with a ``file:line:col`` diagnostic on the
    first violation found.  ``allow_reserved`` admits ``__``-prefixed
    names — set when re-checking compiler output (optimization passes
    synthesize ``__ph*``/``__b*`` labels), never for user source.
    """
    by_name = {fn.name: fn for fn in module.functions}
    for fn in module.functions:
        _check_function(module, fn, by_name, allow_reserved)
    return module


def entry_function(module: Module) -> Function:
    """The ``@main`` entry point (no params, no return), or a diagnostic."""
    main = module.function("main")
    if main is None:
        raise LangError("module has no @main function", module.filename)
    if main.params:
        raise LangError("@main must take no parameters (programs are "
                        "self-contained workloads)", module.filename, main.pos)
    if main.ret is not None:
        raise LangError("@main must not declare a return type",
                        module.filename, main.pos)
    return main


def _err(module: Module, fn: Function, instr, message: str) -> LangError:
    return LangError(f"@{fn.name}: {message}", module.filename, instr.pos)


def _check_function(module: Module, fn: Function,
                    by_name: dict[str, Function],
                    allow_reserved: bool = False) -> None:
    # ---- declared variable types (params + every def site) ----------
    var_types: dict[str, str] = {}
    for name, type_ in fn.params:
        if name.startswith(RESERVED_PREFIX) and not allow_reserved:
            raise LangError(
                f"@{fn.name}: parameter {name!r} uses the reserved "
                f"'{RESERVED_PREFIX}' prefix", module.filename, fn.pos)
        if name in var_types:
            raise LangError(f"@{fn.name}: duplicate parameter {name!r}",
                            module.filename, fn.pos)
        var_types[name] = type_

    labels: set[str] = set()
    for item in fn.items:
        if isinstance(item, Label):
            if item.name in labels:
                raise LangError(
                    f"@{fn.name}: duplicate label .{item.name}",
                    module.filename, item.pos)
            if item.name.startswith(RESERVED_PREFIX) and not allow_reserved:
                raise LangError(
                    f"@{fn.name}: label .{item.name} uses the reserved "
                    f"'{RESERVED_PREFIX}' prefix", module.filename, item.pos)
            labels.add(item.name)
            continue
        if item.dest is None:
            continue
        if item.dest.startswith(RESERVED_PREFIX) and not allow_reserved:
            raise _err(module, fn, item,
                       f"variable {item.dest!r} uses the reserved "
                       f"'{RESERVED_PREFIX}' prefix")
        declared = var_types.get(item.dest)
        if declared is None:
            var_types[item.dest] = item.type
        elif declared != item.type:
            raise _err(module, fn, item,
                       f"variable {item.dest!r} redefined as {item.type} "
                       f"(previously {declared})")

    # ---- per-instruction structural + type checks -------------------
    def arg_types(instr: Instr) -> list[str]:
        types = []
        for arg in instr.args:
            t = var_types.get(arg)
            if t is None:
                raise _err(module, fn, instr,
                           f"use of unknown variable {arg!r}")
            types.append(t)
        return types

    for item in fn.items:
        if isinstance(item, Label):
            continue
        instr = item
        op = instr.op
        if op == "const":
            if instr.args:
                raise _err(module, fn, instr, "const takes no arguments")
            continue                       # literal/type agreement: parser
        if op == "call":
            callee = by_name.get(instr.func)
            if callee is None:
                raise _err(module, fn, instr,
                           f"call to unknown function @{instr.func}")
            got = arg_types(instr)
            want = [t for _, t in callee.params]
            if got != want:
                raise _err(module, fn, instr,
                           f"call @{callee.name} expects "
                           f"({', '.join(want) or 'no args'}), got "
                           f"({', '.join(got) or 'no args'})")
            if instr.dest is not None:
                if callee.ret is None:
                    raise _err(module, fn, instr,
                               f"@{callee.name} returns nothing but the "
                               f"call has a destination")
                if instr.type != callee.ret:
                    raise _err(module, fn, instr,
                               f"call result type {instr.type} != "
                               f"@{callee.name} return type {callee.ret}")
            continue
        if op in CONTROL_OPS:
            if op == "br":
                if len(instr.args) != 1 or len(instr.labels) != 2:
                    raise _err(module, fn, instr,
                               "br needs one condition and two labels")
                if arg_types(instr)[0] != BOOL:
                    raise _err(module, fn, instr,
                               "br condition must be a bool")
            elif op == "jmp":
                if instr.args or len(instr.labels) != 1:
                    raise _err(module, fn, instr, "jmp needs one label")
            else:                           # ret
                if instr.labels:
                    raise _err(module, fn, instr, "ret takes no labels")
                if fn.ret is None:
                    if instr.args:
                        raise _err(module, fn, instr,
                                   f"@{fn.name} returns nothing but ret "
                                   f"has a value")
                else:
                    if len(instr.args) != 1:
                        raise _err(module, fn, instr,
                                   f"ret needs a {fn.ret} value")
                    if arg_types(instr)[0] != fn.ret:
                        raise _err(module, fn, instr,
                                   f"ret value is {arg_types(instr)[0]}, "
                                   f"function returns {fn.ret}")
            for label in instr.labels:
                if label not in labels:
                    raise _err(module, fn, instr,
                               f"jump to unknown label .{label}")
            continue
        if instr.labels:
            raise _err(module, fn, instr, f"{op} takes no labels")
        overloads = (VALUE_OP_SIGNATURES.get(op)
                     or tuple((sig, None)
                              for sig in EFFECT_OP_SIGNATURES[op]))
        got = tuple(arg_types(instr))
        match = next(((sig, result) for sig, result in overloads
                      if sig == got), None)
        if match is None:
            wanted = " | ".join(
                "(" + ", ".join(sig) + ")" for sig, _ in overloads)
            raise _err(module, fn, instr,
                       f"{op} cannot take ({', '.join(got)}); "
                       f"expected {wanted}")
        result = match[1]
        if result is not None and instr.type != result:
            raise _err(module, fn, instr,
                       f"{op} on ({', '.join(got)}) produces {result}, "
                       f"destination is {instr.type}")

    # ---- functions with a return type must not fall off the end -----
    if fn.ret is not None:
        cfg = build_cfg(fn)
        for i, block in enumerate(cfg.blocks):
            if not cfg.succs[i] and (block.terminator is None
                                     or block.terminator.op != "ret"):
                raise LangError(
                    f"@{fn.name}: control can fall off the end without "
                    f"returning a {fn.ret}", module.filename, fn.pos)
            if (block.terminator is None and i + 1 >= len(cfg.blocks)):
                raise LangError(
                    f"@{fn.name}: control can fall off the end without "
                    f"returning a {fn.ret}", module.filename, fn.pos)

    # ---- definite assignment ----------------------------------------
    cfg = build_cfg(fn)
    assigned = definitely_assigned(cfg, {name for name, _ in fn.params})
    for i, block in enumerate(cfg.blocks):
        state = assigned[i]
        if state is None:
            continue                       # unreachable block
        state = set(state)
        for instr in block.instrs:
            for arg in instr.args:
                if arg not in state:
                    raise _err(module, fn, instr,
                               f"variable {arg!r} may be used before "
                               f"assignment")
            if instr.dest is not None:
                state.add(instr.dest)
