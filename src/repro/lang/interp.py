"""Reference interpreter for checked IR modules.

Executes a module's ``@main`` directly (no lowering), producing the
printed output, a dynamic instruction count, and optionally the full
dynamic trace.  Its arithmetic mirrors ``repro.isa.executor`` *exactly*
— the same ``div``-by-zero result, the same ``int(a / b)`` truncation,
the same arbitrary-precision integers — because the differential fuzz
gate asserts bit-for-bit equality between this interpreter and the
lowered ISA program under every engine tier.

The heap is a bump allocator starting at the same ``HEAP_BASE`` the
lowering uses, so pointer values (observable through ``eq``/``ne``
and address arithmetic feeding ``load``/``store``) are identical in
both executions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import WORD_SIZE
from repro.lang.ast import BOOL, Function, Instr, Label, Module
from repro.lang.parser import LangError

#: Memory map shared with the lowering: spill slots, print-output
#: region, and heap live in disjoint gigaword-scale windows so no
#: realistic program crosses them.
SPILL_BASE = 0x8_0000
OUT_BASE = 0x10_0000
HEAP_BASE = 0x20_0000


class InterpError(LangError):
    """A runtime trap: bad address, negative shift, fuel exhausted."""


@dataclass
class InterpResult:
    """Outcome of interpreting a module's ``@main``."""

    output: list[int]                       # printed words (bool as 0/1)
    dynamic_count: int                      # instructions executed
    trace: list[tuple[str, Instr]] | None   # (function, instr), if recorded
    heap_words: int                         # words allocated


class _FnCode:
    """A function body flattened for execution: instrs + label indices."""

    __slots__ = ("fn", "instrs", "label_index")

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.instrs: list[Instr] = []
        self.label_index: dict[str, int] = {}
        for item in fn.items:
            if isinstance(item, Label):
                self.label_index[item.name] = len(self.instrs)
            else:
                self.instrs.append(item)


# Binary value ops.  ``and``/``or``/``xor`` use the bitwise operators,
# which Python defines for both int and bool (returning the argument
# type), matching the IR's polymorphic signatures.  ``div``/``rem``
# reproduce the executor's exact expressions, including ``int(a / b)``
# float-division truncation.
_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: 0 if b == 0 else int(a / b),
    "rem": lambda a, b: 0 if b == 0 else a % b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
    "min": min,
    "max": max,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_MAX_CALL_DEPTH = 200


class Interpreter:
    """One interpretation run; holds memory, output, and fuel."""

    def __init__(self, module: Module, max_steps: int = 5_000_000,
                 record_trace: bool = False) -> None:
        self.module = module
        self.max_steps = max_steps
        self.code = {fn.name: _FnCode(fn) for fn in module.functions}
        self.memory: dict[int, int] = {}
        self.output: list[int] = []
        self.heap = HEAP_BASE
        self.steps = 0
        self.trace: list[tuple[str, Instr]] | None = (
            [] if record_trace else None)

    # -- traps ---------------------------------------------------------
    def _trap(self, instr: Instr, message: str) -> InterpError:
        return InterpError(message, self.module.filename, instr.pos)

    def _check_addr(self, instr: Instr, addr: int) -> int:
        if addr < 0 or addr % WORD_SIZE:
            raise self._trap(instr,
                             f"misaligned or negative address 0x{addr:x}")
        return addr

    # -- execution -----------------------------------------------------
    def run(self, entry: str = "main") -> InterpResult:
        self._call(self.code[entry], [], depth=0)
        return InterpResult(self.output, self.steps, self.trace,
                            (self.heap - HEAP_BASE) // WORD_SIZE)

    def _call(self, code: _FnCode, args: list, depth: int):
        if depth > _MAX_CALL_DEPTH:
            raise InterpError(
                f"@{code.fn.name}: call depth exceeded {_MAX_CALL_DEPTH}",
                self.module.filename, code.fn.pos)
        env = {name: value
               for (name, _), value in zip(code.fn.params, args)}
        pc = 0
        instrs = code.instrs
        while pc < len(instrs):
            instr = instrs[pc]
            pc += 1
            self.steps += 1
            if self.steps > self.max_steps:
                raise self._trap(
                    instr, f"exceeded {self.max_steps} dynamic instructions")
            if self.trace is not None:
                self.trace.append((code.fn.name, instr))

            op = instr.op
            if op == "const":
                env[instr.dest] = instr.value
            elif op in _BINOPS:
                env[instr.dest] = self._binop(instr, env)
            elif op == "id":
                env[instr.dest] = env[instr.args[0]]
            elif op == "abs":
                env[instr.dest] = abs(env[instr.args[0]])
            elif op == "not":
                env[instr.dest] = not env[instr.args[0]]
            elif op == "print":
                self.output.append(int(env[instr.args[0]]))
            elif op == "alloc":
                env[instr.dest] = self.heap
                self.heap += env[instr.args[0]] * WORD_SIZE
            elif op == "ptradd":
                env[instr.dest] = (env[instr.args[0]]
                                   + env[instr.args[1]] * WORD_SIZE)
            elif op == "load":
                addr = self._check_addr(instr, env[instr.args[0]])
                env[instr.dest] = self.memory.get(addr, 0)
            elif op == "store":
                addr = self._check_addr(instr, env[instr.args[0]])
                self.memory[addr] = env[instr.args[1]]
            elif op == "call":
                result = self._call(self.code[instr.func],
                                    [env[a] for a in instr.args], depth + 1)
                if instr.dest is not None:
                    env[instr.dest] = result
            elif op == "jmp":
                pc = code.label_index[instr.labels[0]]
            elif op == "br":
                taken = instr.labels[0] if env[instr.args[0]] \
                    else instr.labels[1]
                pc = code.label_index[taken]
            elif op == "ret":
                return env[instr.args[0]] if instr.args else None
            else:  # pragma: no cover - checker rejects unknown ops
                raise self._trap(instr, f"unimplemented op {op!r}")
        return None                         # fell off the end (void fn)

    def _binop(self, instr: Instr, env: dict):
        a = env[instr.args[0]]
        b = env[instr.args[1]]
        if instr.op in ("shl", "shr") and b < 0:
            raise self._trap(instr, f"negative shift count {b}")
        return _BINOPS[instr.op](a, b)


def interpret(module: Module, max_steps: int = 5_000_000,
              record_trace: bool = False) -> InterpResult:
    """Interpret ``@main``; see :class:`InterpResult`.

    ``bool`` prints as ``0``/``1`` so the output word list compares
    directly against the lowered program's output memory region.
    """
    interp = Interpreter(module, max_steps=max_steps,
                         record_trace=record_trace)
    return interp.run()
