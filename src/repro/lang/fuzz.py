"""Seeded random program generator and the differential gate.

Generates structurally valid, terminating ``.spam`` programs (bounded
counted loops, balanced branches, in-bounds memory traffic, clamped
multiplies so values never approach float-conversion overflow) and
checks, per program, that

1. the interpreter's printed words equal the lowered ISA program's
   architectural output region, and
2. the DynaSpAM cycle simulation consumes the lowered trace to the
   same cycle count under all four engine tiers
   (fastpath x memo), and
3. (optionally) every optimization pass pipeline preserves the
   interpreter's output.

Runnable directly — CI's frontend-smoke job does::

    python -m repro.lang.fuzz --count 50 --seed 20260808
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.lang.check import check_module
from repro.lang.interp import interpret
from repro.lang.lower import execute_lowered, lower_module, output_of
from repro.lang.parser import parse_module
from repro.lang.passes import PASSES, run_passes

#: Multiplication results are clamped ``rem`` this prime so value
#: magnitudes stay far below float-conversion overflow in ``div``.
_MUL_CLAMP = 99991

_SAFE_MUTATE_OPS = ("add", "sub", "and", "or", "xor", "min", "max")
_CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")


class FuzzFailure(AssertionError):
    """A differential mismatch, carrying the offending program."""

    def __init__(self, message: str, source: str) -> None:
        super().__init__(f"{message}\n--- program ---\n{source}")
        self.source = source


class _Gen:
    """One random program (text), grown statement by statement."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.lines: list[str] = []
        self.counter = 0
        self.ints: list[str] = []
        self.bools: list[str] = []
        self.helpers: list[str] = []

    def fresh(self, prefix: str = "v") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def emit(self, line: str) -> None:
        self.lines.append("  " + line)

    def label(self, name: str) -> None:
        self.lines.append(f".{name}:")

    # -- value sources -------------------------------------------------
    def const_int(self) -> str:
        v = self.fresh("c")
        self.emit(f"{v}: int = const {self.rng.randint(-100, 100)};")
        self.ints.append(v)
        return v

    def some_int(self) -> str:
        if not self.ints or self.rng.random() < 0.2:
            return self.const_int()
        return self.rng.choice(self.ints)

    def some_bool(self) -> str:
        if not self.bools or self.rng.random() < 0.3:
            b = self.fresh("b")
            self.emit(f"{b}: bool = {self.rng.choice(_CMP_OPS)} "
                      f"{self.some_int()} {self.some_int()};")
            self.bools.append(b)
            return b
        return self.rng.choice(self.bools)

    # -- statements ----------------------------------------------------
    def stmt_arith(self) -> None:
        kind = self.rng.random()
        v = self.fresh()
        if kind < 0.15 and self.helpers:
            self.emit(f"{v}: int = call @{self.rng.choice(self.helpers)} "
                      f"{self.some_int()} {self.some_int()};")
        elif kind < 0.30:
            t, m = self.fresh("t"), self.fresh("m")
            self.emit(f"{t}: int = mul {self.some_int()} {self.some_int()};")
            self.emit(f"{m}: int = const {_MUL_CLAMP};")
            self.emit(f"{v}: int = rem {t} {m};")
        elif kind < 0.42:
            self.emit(f"{v}: int = div {self.some_int()} {self.some_int()};")
        elif kind < 0.52:
            amt = self.fresh("s")
            self.emit(f"{amt}: int = const {self.rng.randint(0, 12)};")
            op = self.rng.choice(("shl", "shr"))
            self.emit(f"{v}: int = {op} {self.some_int()} {amt};")
        elif kind < 0.60:
            self.emit(f"{v}: int = abs {self.some_int()};")
        elif kind < 0.66:
            self.emit(f"{v}: int = id {self.some_int()};")
        else:
            op = self.rng.choice(_SAFE_MUTATE_OPS)
            self.emit(f"{v}: int = {op} {self.some_int()} {self.some_int()};")
        self.ints.append(v)

    def stmt_bool(self) -> None:
        b = self.fresh("b")
        if self.bools and self.rng.random() < 0.4:
            if self.rng.random() < 0.5:
                self.emit(f"{b}: bool = not "
                          f"{self.rng.choice(self.bools)};")
            else:
                op = self.rng.choice(("and", "or", "xor"))
                self.emit(f"{b}: bool = {op} {self.rng.choice(self.bools)} "
                          f"{self.rng.choice(self.bools)};")
        else:
            self.emit(f"{b}: bool = {self.rng.choice(_CMP_OPS)} "
                      f"{self.some_int()} {self.some_int()};")
        self.bools.append(b)

    def stmt_print(self) -> None:
        if self.bools and self.rng.random() < 0.25:
            self.emit(f"print {self.rng.choice(self.bools)};")
        else:
            self.emit(f"print {self.some_int()};")

    def _mutate_existing(self) -> None:
        """Reassign an existing int var (definite assignment preserved)."""
        v = self.rng.choice(self.ints)
        op = self.rng.choice(_SAFE_MUTATE_OPS)
        self.emit(f"{v}: int = {op} {v} {self.some_int()};")

    def _scoped(self):
        """Snapshot of the available-var lists; vars defined on only
        some paths must not escape their branch (definite assignment)."""
        return len(self.ints), len(self.bools)

    def _unscope(self, snapshot) -> None:
        n_ints, n_bools = snapshot
        del self.ints[n_ints:]
        del self.bools[n_bools:]

    def stmt_branch(self) -> None:
        c = self.some_bool()
        n = self.fresh("L")
        self.emit(f"br {c} .then{n} .else{n};")
        self.label(f"then{n}")
        scope = self._scoped()
        for _ in range(self.rng.randint(1, 2)):
            self._mutate_existing()
        if self.rng.random() < 0.5:
            self.stmt_print()
        self._unscope(scope)
        self.emit(f"jmp .join{n};")
        self.label(f"else{n}")
        self._mutate_existing()
        self._unscope(scope)
        self.emit(f"jmp .join{n};")
        self.label(f"join{n}")

    def stmt_loop(self) -> None:
        i, n, one = self.fresh("i"), self.fresh("n"), self.fresh("one")
        c, lbl = self.fresh("lc"), self.fresh("L")
        # Loop-invariant fodder defined before the loop.
        inv_a, inv_b = self.some_int(), self.some_int()
        self.emit(f"{i}: int = const 0;")
        self.emit(f"{n}: int = const {self.rng.randint(2, 6)};")
        self.emit(f"{one}: int = const 1;")
        self.label(f"head{lbl}")
        self.emit(f"{c}: bool = lt {i} {n};")
        self.emit(f"br {c} .body{lbl} .end{lbl};")
        self.label(f"body{lbl}")
        scope = self._scoped()
        inv = self.fresh("inv")
        self.emit(f"{inv}: int = add {inv_a} {inv_b};")
        v = self.rng.choice(self.ints)
        self.emit(f"{v}: int = add {v} {inv};")
        for _ in range(self.rng.randint(0, 2)):
            self._mutate_existing()
        if self.rng.random() < 0.4:
            self.emit(f"print {self.rng.choice(self.ints)};")
        self._unscope(scope)
        self.emit(f"{i}: int = add {i} {one};")
        self.emit(f"jmp .head{lbl};")
        self.label(f"end{lbl}")

    def stmt_memory(self) -> None:
        size = self.rng.randint(1, 6)
        sz, p, idx, q, r = (self.fresh("sz"), self.fresh("p"),
                            self.fresh("ix"), self.fresh("q"),
                            self.fresh("r"))
        self.emit(f"{sz}: int = const {size};")
        self.emit(f"{p}: ptr = alloc {sz};")
        self.emit(f"{idx}: int = rem {self.some_int()} {sz};")
        self.emit(f"{q}: ptr = ptradd {p} {idx};")
        self.emit(f"store {q} {self.some_int()};")
        self.emit(f"store {p} {self.some_int()};")
        self.emit(f"{r}: int = load {q};")
        self.ints.append(r)

    # -- whole program -------------------------------------------------
    def helper_source(self, name: str) -> str:
        rng = self.rng
        lines = [f"@{name}(a: int, b: int): int {{"]
        avail = ["a", "b"]
        for k in range(rng.randint(1, 3)):
            v = f"h{k}"
            op = rng.choice(_SAFE_MUTATE_OPS + ("div",))
            lines.append(f"  {v}: int = {op} {rng.choice(avail)} "
                         f"{rng.choice(avail)};")
            avail.append(v)
        lines.append(f"  ret {avail[-1]};")
        lines.append("}")
        return "\n".join(lines)

    def generate(self) -> str:
        parts = []
        for k in range(self.rng.randint(0, 2)):
            name = f"helper{k}"
            parts.append(self.helper_source(name))
            self.helpers.append(name)
        stmts = (
            (self.stmt_arith, 0.30), (self.stmt_bool, 0.12),
            (self.stmt_print, 0.16), (self.stmt_branch, 0.14),
            (self.stmt_loop, 0.16), (self.stmt_memory, 0.12),
        )
        self.const_int()
        self.const_int()
        for _ in range(self.rng.randint(4, 9)):
            r = self.rng.random()
            acc = 0.0
            for stmt, weight in stmts:
                acc += weight
                if r < acc:
                    stmt()
                    break
            else:
                self.stmt_arith()
        self.stmt_print()
        parts.append("@main {\n" + "\n".join(self.lines) + "\n}")
        return "\n\n".join(parts) + "\n"


def generate_program(seed: int) -> str:
    """Deterministic random ``.spam`` source for one seed."""
    return _Gen(random.Random(seed)).generate()


# ---------------------------------------------------------------------------
# Differential gate
# ---------------------------------------------------------------------------
def tier_cycles(lowered, trace) -> dict[str, int]:
    """DynaSpAM cycle counts for the same trace under all four tiers.

    Simulates directly (engine choice is deliberately not part of the
    run-cache identity, so going through the cache would compare a
    result with itself).
    """
    from repro.core import DynaSpAM
    from repro.engine import use_fastpath, use_memo

    cycles: dict[str, int] = {}
    for fastpath in (False, True):
        for memo in (False, True):
            with use_fastpath(fastpath), use_memo(memo):
                result = DynaSpAM().run(trace, lowered.program)
            cycles[f"fastpath={int(fastpath)},memo={int(memo)}"] = \
                result.cycles
    return cycles


def differential_check(source: str, filename: str = "<fuzz>",
                       check_tiers: bool = True,
                       check_passes: bool = True) -> dict:
    """Assert the full contract for one program; returns a summary."""
    module = check_module(parse_module(source, filename))
    expected = interpret(module)
    lowered = lower_module(module, name=filename)
    result = execute_lowered(lowered)
    got = output_of(result)
    if got != expected.output:
        raise FuzzFailure(
            f"{filename}: interpreter printed {expected.output} but the "
            f"lowered program produced {got}", source)

    summary = {
        "output_words": len(expected.output),
        "interp_dynamic": expected.dynamic_count,
        "lowered_dynamic": result.dynamic_count,
    }
    if check_tiers:
        cycles = tier_cycles(lowered, result.trace)
        if len(set(cycles.values())) != 1:
            raise FuzzFailure(
                f"{filename}: engine tiers disagree on cycles: {cycles}",
                source)
        summary["cycles"] = next(iter(cycles.values()))
    if check_passes:
        for name in PASSES:
            optimized = run_passes(module, [name])
            check_module(optimized, allow_reserved=True)
            opt_out = interpret(optimized).output
            if opt_out != expected.output:
                raise FuzzFailure(
                    f"{filename}: pass {name!r} changed output "
                    f"{expected.output} -> {opt_out}", source)
        full = run_passes(module, list(PASSES))
        check_module(full, allow_reserved=True)
        lowered_opt = lower_module(full, name=filename)
        opt_result = execute_lowered(lowered_opt)
        if output_of(opt_result) != expected.output:
            raise FuzzFailure(
                f"{filename}: lowering the fully optimized module "
                f"changed output", source)
        summary["optimized_dynamic"] = opt_result.dynamic_count
    return summary


def run_fuzz(count: int, seed: int, check_tiers: bool = True,
             check_passes: bool = True, verbose: bool = False) -> dict:
    """Run the differential gate over ``count`` seeded programs."""
    totals = {"programs": count, "seed": seed, "output_words": 0,
              "interp_dynamic": 0, "lowered_dynamic": 0}
    for k in range(count):
        program_seed = seed + k
        source = generate_program(program_seed)
        summary = differential_check(
            source, filename=f"<fuzz:{program_seed}>",
            check_tiers=check_tiers, check_passes=check_passes)
        for key in ("output_words", "interp_dynamic", "lowered_dynamic"):
            totals[key] += summary[key]
        if verbose:
            print(f"  seed {program_seed}: {summary}")
    return totals


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lang.fuzz",
        description="differential fuzz gate: interpreter vs lowered ISA "
                    "program under all engine tiers")
    parser.add_argument("--count", type=int, default=50)
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--no-tiers", action="store_true",
                        help="skip the 4-tier cycle comparison")
    parser.add_argument("--no-passes", action="store_true",
                        help="skip per-pass output preservation")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    try:
        totals = run_fuzz(args.count, args.seed,
                          check_tiers=not args.no_tiers,
                          check_passes=not args.no_passes,
                          verbose=args.verbose)
    except FuzzFailure as exc:
        print(f"repro.lang.fuzz: FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"fuzz: {totals['programs']} programs ok (seed {totals['seed']}, "
          f"{totals['output_words']} words printed, "
          f"{totals['interp_dynamic']} interp / "
          f"{totals['lowered_dynamic']} lowered dynamic instructions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
