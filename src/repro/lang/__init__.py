"""``repro.lang``: the program-ingestion frontend.

A Bril-style SSA-free text IR (``.spam`` files) with a hand-written
parser, a semantic checker, a reference interpreter, an optimization
pass pipeline (LVN / DCE / LICM), and a lowering onto the simulator
ISA — so any user-supplied program becomes a DynaSpAM workload that
runs through the entire existing stack unchanged.

Typical use::

    from repro.lang import interpret, load_module, lower_module

    module = load_module(source_text, filename="prog.spam")
    print(interpret(module).output)           # reference semantics
    lowered = lower_module(module)            # repro.isa Program

See ``docs/frontend.md`` for the grammar and the lowering contract.
"""

from __future__ import annotations

from pathlib import Path

from repro.lang.ast import Module, format_module
from repro.lang.check import check_module, entry_function
from repro.lang.interp import InterpResult, interpret
from repro.lang.lower import (
    Lowered,
    LoweringError,
    execute_lowered,
    lower_module,
    output_of,
)
from repro.lang.parser import LangError, parse_module
from repro.lang.passes import PASSES, parse_pass_spec, run_passes

__all__ = [
    "InterpResult",
    "LangError",
    "Lowered",
    "LoweringError",
    "Module",
    "PASSES",
    "check_module",
    "entry_function",
    "execute_lowered",
    "format_module",
    "interpret",
    "load_file",
    "load_module",
    "lower_module",
    "output_of",
    "parse_module",
    "parse_pass_spec",
    "run_passes",
]


def load_module(source: str, filename: str = "<string>") -> Module:
    """Parse *and* check ``.spam`` text; the entry point most callers
    want.  Raises :class:`LangError` with ``file:line:col``."""
    module = check_module(parse_module(source, filename))
    entry_function(module)
    return module


def load_file(path: str | Path) -> Module:
    """Load and validate a ``.spam`` file."""
    path = Path(path)
    return load_module(path.read_text(), filename=str(path))
