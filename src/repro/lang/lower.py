"""Lowering: checked IR modules -> `repro.isa` programs.

The contract: interpreting a module and functionally executing its
lowered program produce *identical* printed words and identical heap
addresses.  The differential fuzz gate holds this across every engine
tier, so every choice here mirrors either the interpreter or the ISA
executor exactly.

Shape of the translation:

* **Inlining.**  Calls are inlined bottom-up (recursion is a
  :class:`LoweringError`) so the result is a single flat function —
  the ISA has no call instruction or stack discipline.
* **Register allocation.**  Variables are ranked by static use+def
  frequency; the top 26 live in ``r1``..``r26``, the rest spill to
  word slots at ``SPILL_BASE`` addressed off ``r0``.  Reserved:
  ``r27`` output cursor, ``r28`` heap bump pointer, ``r29`` result
  temp, ``r30``/``r31`` spill-load scratches.
* **Memory map.**  ``print v`` stores through ``r27`` (post-
  incremented) into the output region at ``OUT_BASE``; ``alloc``
  bumps ``r28`` from ``HEAP_BASE`` — the same base the interpreter
  uses, making pointer values comparable.
* **Booleans** are 0/1 words; ``not``/``ne`` lower to ``XOR 1``,
  ``gt``/``ge`` to swapped ``SLT``/``SLE``.

``alloc``'s size-to-bytes conversion is a shift-left by the constant
2, which is total for any size value, so lowered execution traps only
where the interpreter traps (bad addresses, negative shifts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import ExecutionResult, FunctionalExecutor, Memory
from repro.isa.instructions import WORD_SIZE
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.lang.ast import Function, Instr, Label, Module
from repro.lang.interp import HEAP_BASE, OUT_BASE, SPILL_BASE
from repro.lang.parser import LangError
from repro.lang.passes.cfg import form_blocks, normalize_terminators

#: Registers the allocator may hand to variables.
ALLOCATABLE = tuple(f"r{i}" for i in range(1, 27))
OUT_CURSOR = "r27"
HEAP_PTR = "r28"
TEMP = "r29"
SCRATCH = ("r30", "r31")

EXIT_LABEL = "__exit"


class LoweringError(LangError):
    """The module cannot be lowered (e.g. recursion)."""


# ---------------------------------------------------------------------------
# Call inlining
# ---------------------------------------------------------------------------
def _rename(instr: Instr, prefix: str) -> Instr:
    return Instr(
        instr.op,
        prefix + instr.dest if instr.dest is not None else None,
        instr.type,
        tuple(prefix + a for a in instr.args),
        instr.value,
        instr.func,
        tuple(prefix + t for t in instr.labels),
        instr.pos,
    )


def _inline_items(module: Module, fn: Function, stack: frozenset[str],
                  counter: list[int]) -> list[Label | Instr]:
    out: list[Label | Instr] = []
    for item in fn.items:
        if not (isinstance(item, Instr) and item.op == "call"):
            out.append(item)
            continue
        callee = module.function(item.func)
        if callee.name in stack:
            raise LoweringError(
                f"cannot lower recursive call to @{callee.name} "
                f"(the ISA has no call stack)", module.filename, item.pos)
        k = counter[0]
        counter[0] += 1
        prefix = f"__inl{k}_"
        # Not under ``prefix``: a callee label named ``done`` would
        # otherwise collide with the generated return label.
        done = f"__ret{k}"
        for (pname, ptype), arg in zip(callee.params, item.args):
            out.append(Instr("id", prefix + pname, ptype, (arg,),
                             pos=item.pos))
        body = _inline_items(module, callee, stack | {callee.name}, counter)
        for bitem in body:
            if isinstance(bitem, Label):
                out.append(Label(prefix + bitem.name, bitem.pos))
            elif bitem.op == "ret":
                if item.dest is not None:
                    out.append(Instr("id", item.dest, item.type,
                                     (prefix + bitem.args[0],),
                                     pos=bitem.pos))
                out.append(Instr("jmp", labels=(done,), pos=bitem.pos))
            else:
                out.append(_rename(bitem, prefix))
        out.append(Label(done))
    return out


def inline_main(module: Module) -> Function:
    """``@main`` with every call transitively inlined."""
    main = module.function("main")
    items = _inline_items(module, main, frozenset({"main"}), [0])
    return Function("main", (), None, tuple(items), main.pos)


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------
@dataclass
class Lowered:
    """A lowered module: the linked program plus allocation metadata."""

    program: Program
    var_regs: dict[str, str]                # reg-allocated variables
    spill_slots: dict[str, int]             # spilled variable -> slot index
    static_size: int = field(init=False)

    def __post_init__(self) -> None:
        self.static_size = len(self.program)


def _allocate(fn: Function) -> tuple[dict[str, str], dict[str, int]]:
    freq: dict[str, int] = {}
    for instr in fn.instructions():
        for var in (instr.dest, *instr.args):
            if var is not None:
                freq[var] = freq.get(var, 0) + 1
    ranked = sorted(freq, key=lambda v: (-freq[v], v))
    var_regs = dict(zip(ranked, ALLOCATABLE))
    spill_slots = {v: i for i, v in enumerate(ranked[len(ALLOCATABLE):])}
    return var_regs, spill_slots


class _Emitter:
    def __init__(self, builder: ProgramBuilder, var_regs: dict[str, str],
                 spill_slots: dict[str, int]) -> None:
        self.b = builder
        self.var_regs = var_regs
        self.spill_slots = spill_slots

    def _slot_addr(self, var: str) -> int:
        return SPILL_BASE + self.spill_slots[var] * WORD_SIZE

    def operands(self, instr: Instr) -> list[str]:
        """Registers holding the args (spilled vars load into scratch)."""
        loaded: dict[str, str] = {}
        scratch = list(SCRATCH)
        regs = []
        for arg in instr.args:
            reg = self.var_regs.get(arg) or loaded.get(arg)
            if reg is None:
                reg = scratch.pop(0)
                self.b.lw(reg, "r0", self._slot_addr(arg))
                loaded[arg] = reg
            regs.append(reg)
        return regs

    def write_dest(self, dest: str, compute) -> None:
        """``compute(reg)`` emits the op into ``reg``; spills if needed."""
        reg = self.var_regs.get(dest)
        if reg is not None:
            compute(reg)
        else:
            compute(TEMP)
            self.b.sw("r0", TEMP, self._slot_addr(dest))

    # -- one IR instruction -> ISA instructions -----------------------
    def emit(self, instr: Instr) -> None:
        b = self.b
        op = instr.op
        if op == "const":
            self.write_dest(instr.dest,
                            lambda d: b.li(d, int(instr.value)))
            return
        if op == "ret":                     # only @main's own (void) rets
            b.jmp(EXIT_LABEL)
            return
        if op == "jmp":
            b.jmp("L_" + instr.labels[0])
            return

        srcs = self.operands(instr)
        if op == "br":
            b.bne(srcs[0], "r0", "L_" + instr.labels[0])
            b.jmp("L_" + instr.labels[1])
        elif op == "print":
            b.sw(OUT_CURSOR, srcs[0], 0)
            b.addi(OUT_CURSOR, OUT_CURSOR, WORD_SIZE)
        elif op == "store":
            b.sw(srcs[0], srcs[1], 0)
        elif op == "load":
            self.write_dest(instr.dest, lambda d: b.lw(d, srcs[0], 0))
        elif op == "alloc":
            # dest := heap pointer, then bump by size * 4 (shift by a
            # constant 2: total for any size, unlike a multiply lowered
            # through variable shift amounts).
            self.write_dest(instr.dest, lambda d: b.mov(d, HEAP_PTR))
            b.shl(TEMP, srcs[0], 2)
            b.add(HEAP_PTR, HEAP_PTR, TEMP)
        elif op == "ptradd":
            b.shl(TEMP, srcs[1], 2)
            self.write_dest(instr.dest, lambda d: b.add(d, srcs[0], TEMP))
        elif op == "id":
            self.write_dest(instr.dest, lambda d: b.mov(d, srcs[0]))
        elif op == "not":
            self.write_dest(instr.dest, lambda d: b.xori(d, srcs[0], 1))
        elif op == "ne":
            def compute_ne(d: str) -> None:
                b.seq(d, srcs[0], srcs[1])
                b.xori(d, d, 1)
            self.write_dest(instr.dest, compute_ne)
        elif op in _SWAPPED:
            opcode = _SWAPPED[op]
            self.write_dest(
                instr.dest,
                lambda d: b.raw(opcode, d, (srcs[1], srcs[0])))
        elif op in _BINARY:
            opcode = _BINARY[op]
            self.write_dest(
                instr.dest,
                lambda d: b.raw(opcode, d, (srcs[0], srcs[1])))
        elif op == "abs":
            self.write_dest(instr.dest, lambda d: b.abs_(d, srcs[0]))
        else:  # pragma: no cover - checker + inliner leave nothing else
            raise LoweringError(f"cannot lower op {op!r}", pos=instr.pos)


_BINARY = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "div": Opcode.DIV, "rem": Opcode.REM,
    "shl": Opcode.SHL, "shr": Opcode.SHR,
    "and": Opcode.AND, "or": Opcode.OR, "xor": Opcode.XOR,
    "min": Opcode.MIN, "max": Opcode.MAX,
    "eq": Opcode.SEQ, "lt": Opcode.SLT, "le": Opcode.SLE,
}
_SWAPPED = {"gt": Opcode.SLT, "ge": Opcode.SLE}


def lower_module(module: Module, name: str = "spam") -> Lowered:
    """Lower a checked module to a linked ISA program."""
    fn = normalize_terminators(inline_main(module))
    var_regs, spill_slots = _allocate(fn)
    builder = ProgramBuilder(name)
    builder.li(OUT_CURSOR, OUT_BASE)
    builder.li(HEAP_PTR, HEAP_BASE)
    emitter = _Emitter(builder, var_regs, spill_slots)
    for block in form_blocks(fn):
        if block.label is not None:
            builder.label("L_" + block.label)
        for instr in block.instrs:
            emitter.emit(instr)
    builder.label(EXIT_LABEL)
    builder.halt()
    return Lowered(builder.build(), var_regs, spill_slots)


# ---------------------------------------------------------------------------
# Execution + architectural output
# ---------------------------------------------------------------------------
def execute_lowered(lowered: Lowered,
                    max_instructions: int = 5_000_000) -> ExecutionResult:
    """Functionally execute a lowered program on a fresh memory image."""
    executor = FunctionalExecutor(max_instructions=max_instructions)
    return executor.run(lowered.program, Memory())


def output_of(result: ExecutionResult) -> list[int]:
    """The printed words of a lowered run, read back from ``OUT_BASE``.

    Directly comparable to :class:`repro.lang.interp.InterpResult`'s
    ``output`` list — the differential contract.
    """
    count = (int(result.registers.read(OUT_CURSOR)) - OUT_BASE) // WORD_SIZE
    return [int(result.memory.load(OUT_BASE + i * WORD_SIZE))
            for i in range(count)]
