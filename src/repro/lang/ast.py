"""AST for the ``.spam`` text IR.

A module is an ordered set of functions; a function body is a flat list
of :class:`Label` and :class:`Instr` items (Bril-style, SSA-free).
Values are typed ``int`` / ``bool`` / ``ptr``; operations are the integer
subset of ``repro.isa.opcodes`` plus memory (``alloc``/``load``/
``store``/``ptradd``), ``const``, ``print``, ``call``, and control
(``br``/``jmp``/``ret``).

The pretty-printer emits canonical text that re-parses to an equal
module (round-trip tested), which is what makes the pass pipeline
inspectable: ``repro ingest --emit-ir`` shows exactly what will be
interpreted and lowered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

INT = "int"
BOOL = "bool"
PTR = "ptr"
TYPES = (INT, BOOL, PTR)

#: Value-producing operations: op -> tuple of ``(arg_types, result_type)``
#: overloads.  ``const`` and ``call`` are handled specially by the checker
#: (literal payload / callee signature).
VALUE_OP_SIGNATURES: dict[str, tuple[tuple[tuple[str, ...], str], ...]] = {
    "add": (((INT, INT), INT),),
    "sub": (((INT, INT), INT),),
    "mul": (((INT, INT), INT),),
    "div": (((INT, INT), INT),),
    "rem": (((INT, INT), INT),),
    "shl": (((INT, INT), INT),),
    "shr": (((INT, INT), INT),),
    "min": (((INT, INT), INT),),
    "max": (((INT, INT), INT),),
    "abs": (((INT,), INT),),
    "and": (((INT, INT), INT), ((BOOL, BOOL), BOOL)),
    "or": (((INT, INT), INT), ((BOOL, BOOL), BOOL)),
    "xor": (((INT, INT), INT), ((BOOL, BOOL), BOOL)),
    "not": (((BOOL,), BOOL),),
    "eq": (((INT, INT), BOOL), ((BOOL, BOOL), BOOL), ((PTR, PTR), BOOL)),
    "ne": (((INT, INT), BOOL), ((BOOL, BOOL), BOOL), ((PTR, PTR), BOOL)),
    "lt": (((INT, INT), BOOL),),
    "le": (((INT, INT), BOOL),),
    "gt": (((INT, INT), BOOL),),
    "ge": (((INT, INT), BOOL),),
    "id": (((INT,), INT), ((BOOL,), BOOL), ((PTR,), PTR)),
    "alloc": (((INT,), PTR),),
    "load": (((PTR,), INT),),
    "ptradd": (((PTR, INT), PTR),),
}

#: Effect operations (no destination): op -> arg-type overloads.
EFFECT_OP_SIGNATURES: dict[str, tuple[tuple[str, ...], ...]] = {
    "print": ((INT,), (BOOL,)),
    "store": ((PTR, INT),),
}

#: Control operations, validated structurally by the checker.
CONTROL_OPS = frozenset({"br", "jmp", "ret"})

ALL_OPS = (
    frozenset(VALUE_OP_SIGNATURES)
    | frozenset(EFFECT_OP_SIGNATURES)
    | CONTROL_OPS
    | {"const", "call"}
)

#: Operations whose only effect is their destination value.  These are
#: the removal candidates for DCE and the CSE/hoist candidates for
#: LVN/LICM.  ``load`` and ``alloc`` produce values but depend on (or
#: advance) memory state, so they are *not* freely reorderable: LVN
#: gives them fresh value numbers and LICM never hoists them.
PURE_VALUE_OPS = frozenset(VALUE_OP_SIGNATURES) - {"load", "alloc"} | {"const"}


@dataclass(frozen=True)
class Position:
    """Source coordinates of one token/instruction (1-based)."""

    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


@dataclass(frozen=True)
class Label:
    """A jump target inside a function body (``.name:`` in the text)."""

    name: str
    pos: Position = field(default_factory=Position, compare=False)


@dataclass(frozen=True)
class Instr:
    """One IR instruction.

    ``dest``/``type`` are set for value-producing ops, ``value`` for
    ``const``, ``func`` for ``call``, and ``labels`` for ``br``/``jmp``.
    """

    op: str
    dest: str | None = None
    type: str | None = None
    args: tuple[str, ...] = ()
    value: int | bool | None = None
    func: str | None = None
    labels: tuple[str, ...] = ()
    pos: Position = field(default_factory=Position, compare=False)

    @property
    def is_terminator(self) -> bool:
        return self.op in ("br", "jmp", "ret")


@dataclass(frozen=True)
class Function:
    """A named function: typed params, optional return type, flat body."""

    name: str
    params: tuple[tuple[str, str], ...] = ()
    ret: str | None = None
    items: tuple[Label | Instr, ...] = ()
    pos: Position = field(default_factory=Position, compare=False)

    def instructions(self):
        """Iterate over the body's instructions, skipping labels."""
        for item in self.items:
            if isinstance(item, Instr):
                yield item


@dataclass(frozen=True)
class Module:
    """An ordered collection of functions parsed from one source text."""

    functions: tuple[Function, ...] = ()
    filename: str = "<string>"

    def function(self, name: str) -> Function | None:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None

    def replace_function(self, new_fn: Function) -> "Module":
        """A copy of this module with ``new_fn`` swapped in by name."""
        return Module(
            tuple(new_fn if fn.name == new_fn.name else fn
                  for fn in self.functions),
            self.filename,
        )


# ---------------------------------------------------------------------------
# Pretty-printer (canonical text form; round-trips through the parser)
# ---------------------------------------------------------------------------
def format_instr(instr: Instr) -> str:
    """Render one instruction in canonical ``.spam`` syntax (no ';')."""
    parts: list[str] = []
    if instr.dest is not None:
        parts.append(f"{instr.dest}: {instr.type} =")
    parts.append(instr.op)
    if instr.op == "const":
        if instr.type == BOOL:
            parts.append("true" if instr.value else "false")
        else:
            parts.append(str(instr.value))
    if instr.func is not None:
        parts.append(f"@{instr.func}")
    parts.extend(instr.args)
    parts.extend(f".{label}" for label in instr.labels)
    return " ".join(parts)


def format_function(fn: Function) -> str:
    header = f"@{fn.name}"
    if fn.params:
        header += "(" + ", ".join(f"{n}: {t}" for n, t in fn.params) + ")"
    if fn.ret is not None:
        header += f": {fn.ret}"
    lines = [header + " {"]
    for item in fn.items:
        if isinstance(item, Label):
            lines.append(f".{item.name}:")
        else:
            lines.append(f"  {format_instr(item)};")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    """Canonical text of the whole module (ends with a newline)."""
    return "\n\n".join(format_function(fn) for fn in module.functions) + "\n"
