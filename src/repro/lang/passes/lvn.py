"""Local value numbering: CSE, constant folding, and copy propagation.

Per basic block (CS6120 lesson 3 style).  Each computed value gets a
number and a *home* variable (the variable that currently holds it);
recomputations are rewritten to ``id home``, and a recomputation into
its own home — ``v = id v`` after rewriting — is deleted outright,
which is where LVN strictly reduces the dynamic instruction count.

``load``, ``alloc``, and ``call`` results get fresh opaque numbers
(memory state and allocator position make them non-reusable); their
arguments are still canonicalized.  Constant folding reuses the
interpreter's op table so folded results match execution bit-for-bit.
"""

from __future__ import annotations

from repro.lang.ast import BOOL, Function, Instr, Module
from repro.lang.interp import _BINOPS
from repro.lang.passes.cfg import Block, form_blocks, to_function

#: Ops where operand order is irrelevant — canonicalized by sorting
#: value numbers so ``add a b`` and ``add b a`` share a number.
_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor",
                          "eq", "ne", "min", "max"})

#: Don't fold shifts by silly amounts — the folded constant would be
#: astronomically large (or the shift would trap at runtime anyway).
_MAX_FOLD_SHIFT = 1024


def _fold(instr: Instr, const_args: list) -> int | bool | None:
    """Evaluate a pure op over constant args; None if not foldable."""
    op = instr.op
    try:
        if op == "id":
            result = const_args[0]
        elif op == "abs":
            result = abs(const_args[0])
        elif op == "not":
            result = not const_args[0]
        elif op in _BINOPS:
            a, b = const_args
            if op in ("shl", "shr") and not 0 <= b <= _MAX_FOLD_SHIFT:
                return None
            result = _BINOPS[op](a, b)
        else:
            return None
    except (OverflowError, ValueError, ZeroDivisionError):
        return None
    return bool(result) if instr.type == BOOL else int(result)


class _Numbering:
    """Value-number state for one block."""

    def __init__(self) -> None:
        self.var2num: dict[str, int] = {}
        self.val2num: dict[tuple, int] = {}
        self.home: dict[int, str] = {}
        self.const: dict[int, int | bool] = {}
        self._next = 0

    def fresh(self, var: str) -> int:
        """An opaque number for a value computed outside our view."""
        num = self._next
        self._next = num + 1
        self.home[num] = var
        self.write(var, num)
        return num

    def number_of(self, var: str) -> int:
        if var not in self.var2num:
            self.fresh(var)                # param / defined in another block
        return self.var2num[var]

    def intern(self, value: tuple, dest: str) -> tuple[int, bool]:
        """Number for ``value``; second item is True if it already existed."""
        if value in self.val2num:
            return self.val2num[value], True
        num = self._next
        self._next = num + 1
        self.val2num[value] = num
        self.home[num] = dest
        return num, False

    def write(self, dest: str, num: int) -> None:
        """Record ``dest = <num>``, re-homing values dest used to hold."""
        old = self.var2num.get(dest)
        self.var2num[dest] = num
        if old is None or old == num:
            return
        if self.home.get(old) == dest:
            replacement = next((v for v, n in self.var2num.items()
                                if n == old and v != dest), None)
            if replacement is not None:
                self.home[old] = replacement
            else:
                del self.home[old]
                self.val2num = {v: n for v, n in self.val2num.items()
                                if n != old}


def _lvn_block(block: Block) -> list[Instr]:
    state = _Numbering()
    out: list[Instr] = []
    for instr in block.instrs:
        op = instr.op
        arg_nums = [state.number_of(a) for a in instr.args]
        new_args = tuple(state.home.get(n, a)
                         for n, a in zip(arg_nums, instr.args))

        if instr.dest is None or op == "call" or op in ("load", "alloc"):
            # Effects, control, and opaque results: canonicalize args,
            # give any dest a fresh number.
            out.append(Instr(op, instr.dest, instr.type, new_args,
                             instr.value, instr.func, instr.labels,
                             instr.pos))
            if instr.dest is not None:
                state.fresh(instr.dest)
            continue

        if op == "id":
            num = arg_nums[0]
            home = state.home.get(num, new_args[0])
            if home == instr.dest and state.var2num.get(instr.dest) == num:
                continue                   # v = id v: a no-op, delete it
            out.append(Instr("id", instr.dest, instr.type, (home,),
                             pos=instr.pos))
            state.write(instr.dest, num)
            continue

        # const and pure value ops
        if op == "const":
            value = ("const", instr.type, instr.value)
        else:
            const_args = [state.const.get(n) for n in arg_nums]
            if all(c is not None for c in const_args):
                folded = _fold(instr, const_args)
                if folded is not None:
                    instr = Instr("const", instr.dest, instr.type,
                                  value=folded, pos=instr.pos)
                    op = "const"
            if op == "const":
                value = ("const", instr.type, instr.value)
            else:
                key = tuple(sorted(arg_nums)) if op in _COMMUTATIVE \
                    else tuple(arg_nums)
                value = (op, instr.type, key)

        num, existed = state.intern(value, instr.dest)
        if existed:
            home = state.home[num]
            if home == instr.dest and state.var2num.get(instr.dest) == num:
                continue                   # recompute into own home: no-op
            out.append(Instr("id", instr.dest, instr.type, (home,),
                             pos=instr.pos))
        else:
            if value[0] == "const":
                state.const[num] = value[2]
            # A fold (pure op -> const) drops the now-meaningless args.
            out.append(Instr(op, instr.dest, instr.type,
                             () if op == "const" else new_args,
                             instr.value, instr.func, instr.labels,
                             instr.pos))
        state.write(instr.dest, num)
    return out


def lvn_function(fn: Function) -> Function:
    blocks = [Block(b.label, _lvn_block(b)) for b in form_blocks(fn)]
    return to_function(fn, blocks)


def run(module: Module) -> Module:
    """Apply LVN to every function in the module."""
    for fn in module.functions:
        module = module.replace_function(lvn_function(fn))
    return module
