"""Loop-invariant code motion via natural loops and dominators.

For each natural loop, pure value instructions whose arguments are
loop-invariant are moved to a freshly inserted preheader, provided the
move cannot change behavior:

* the destination has exactly one definition inside the loop,
* the destination is not live into the header (no use of the
  previous iteration's value),
* and either the defining block dominates every loop exit (the
  instruction runs on any entry that eventually leaves the loop), or
  the op cannot trap *and* the destination is dead outside the loop —
  the speculative case that unlocks the common while-loop body, where
  nothing dominates the header exit.  ``shl``/``shr``/``div``/``rem``
  are never speculated (negative shift counts and float-conversion
  overflow can trap).

Memory ops, ``alloc``, and calls never move.  Terminators are
normalized first so preheader edges can be retargeted by label alone;
the pass iterates to a fixpoint, which lets inner-loop hoists cascade
out of outer loops.
"""

from __future__ import annotations

from repro.lang.ast import Function, Instr, Module, PURE_VALUE_OPS
from repro.lang.passes.cfg import (
    CFG,
    Block,
    Loop,
    build_cfg,
    dominators,
    liveness,
    natural_loops,
    normalize_terminators,
    to_function,
)


#: Pure ops that can still raise at runtime (negative shift counts,
#: float-conversion overflow in div/rem) — never hoisted speculatively.
_TRAPPING = frozenset({"shl", "shr", "div", "rem"})


def _hoist_one(fn: Function, cfg: CFG, loop: Loop) -> Function | None:
    """Hoist what this loop allows; None if nothing moved."""
    body = loop.body
    header = loop.header

    defs: dict[str, list[tuple[int, int]]] = {}
    for b in body:
        for k, instr in enumerate(cfg.blocks[b].instrs):
            if instr.dest is not None:
                defs.setdefault(instr.dest, []).append((b, k))

    # Invariance fixpoint.  ``invariant[(b, k)]`` holds the discovery
    # round, used later to order hoisted instructions by dependency.
    invariant: dict[tuple[int, int], int] = {}
    round_no = 0
    changed = True
    while changed:
        changed = False
        round_no += 1
        for b in body:
            for k, instr in enumerate(cfg.blocks[b].instrs):
                if (b, k) in invariant or instr.dest is None \
                        or instr.op not in PURE_VALUE_OPS:
                    continue
                ok = True
                for arg in instr.args:
                    sites = defs.get(arg, [])
                    if not sites:
                        continue           # defined outside: invariant
                    if len(sites) != 1 or sites[0] not in invariant:
                        ok = False
                        break
                if ok:
                    invariant[(b, k)] = round_no
                    changed = True

    dom = dominators(cfg)
    live_in, _ = liveness(cfg)
    exits = [b for b in body if any(s not in body for s in cfg.succs[b])]
    outside_live: set[str] = set()
    for e in exits:
        for s in cfg.succs[e]:
            if s not in body:
                outside_live |= live_in[s]

    def hoistable(site: tuple[int, int]) -> bool:
        b, k = site
        instr = cfg.blocks[b].instrs[k]
        dest = instr.dest
        if len(defs[dest]) != 1 or dest in live_in[header]:
            return False
        if all(b in dom[e] for e in exits):
            return True
        return instr.op not in _TRAPPING and dest not in outside_live

    sites = sorted((s for s in invariant if hoistable(s)),
                   key=lambda s: (invariant[s], s))
    if not sites:
        return None

    # Build the preheader and splice it in front of the header.
    names = set(cfg.index)
    ph = 0
    while f"__ph{ph}" in names:
        ph += 1
    header_name = cfg.names[header]
    hoisted = [cfg.blocks[s[0]].instrs[s[1]] for s in sites]
    preheader = Block(f"__ph{ph}",
                      hoisted + [Instr("jmp", labels=(header_name,))])

    removed = set(sites)
    blocks: list[Block] = []
    for i, block in enumerate(cfg.blocks):
        label = block.label if i != header else header_name
        instrs = []
        for k, instr in enumerate(block.instrs):
            if (i, k) in removed:
                continue
            # Retarget non-back-edge jumps into the header.
            if instr.is_terminator and i not in body \
                    and header_name in instr.labels:
                instr = Instr(instr.op, args=instr.args,
                              labels=tuple(preheader.label
                                           if t == header_name else t
                                           for t in instr.labels),
                              pos=instr.pos)
            instrs.append(instr)
        if i == header:
            blocks.append(preheader)
        blocks.append(Block(label, instrs))
    return to_function(fn, blocks)


def licm_function(fn: Function) -> Function:
    fn = normalize_terminators(fn)
    progress = True
    while progress:
        progress = False
        cfg = build_cfg(fn)
        for loop in natural_loops(cfg):
            result = _hoist_one(fn, cfg, loop)
            if result is not None:
                fn = result
                progress = True
                break                      # CFG changed: recompute
    return fn


def run(module: Module) -> Module:
    """Apply LICM to every function in the module."""
    for fn in module.functions:
        module = module.replace_function(licm_function(fn))
    return module
