"""Dead code elimination: global, iterative, per function.

Deletes value-producing instructions whose destination is never read
anywhere in the function, repeating until a fixpoint (deleting one
instruction can orphan the instructions that fed it).

Removable ops are the pure value ops plus ``load`` — a dead load has
no effect on memory.  ``alloc`` is deliberately *kept* even when dead:
it advances the bump allocator, so removing one would shift every
subsequent allocation's address, which is observable through pointer
equality and out-of-bounds-by-construction address arithmetic.
"""

from __future__ import annotations

from repro.lang.ast import Function, Instr, Label, Module, PURE_VALUE_OPS

_REMOVABLE = PURE_VALUE_OPS | {"load"}


def dce_function(fn: Function) -> Function:
    items = list(fn.items)
    while True:
        used: set[str] = set()
        for item in items:
            if isinstance(item, Instr):
                used.update(item.args)
        kept = [item for item in items
                if isinstance(item, Label)
                or item.op not in _REMOVABLE
                or item.dest in used]
        if len(kept) == len(items):
            return Function(fn.name, fn.params, fn.ret, tuple(kept), fn.pos)
        items = kept


def run(module: Module) -> Module:
    """Apply DCE to every function in the module."""
    for fn in module.functions:
        module = module.replace_function(dce_function(fn))
    return module
