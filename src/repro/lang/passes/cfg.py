"""Control-flow analysis over IR functions.

Blocks, successor/predecessor edges, dominators, natural loops, and
global liveness — the shared substrate of the semantic checker
(definite assignment), LICM, and anything else that needs to reason
about paths.  All analyses operate on an immutable :class:`CFG` built
from a :class:`~repro.lang.ast.Function`; transforms rebuild the
function with :func:`to_function`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import Function, Instr, Label


@dataclass
class Block:
    """One basic block: an optional leading label and its instructions."""

    label: str | None
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr | None:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None


def form_blocks(fn: Function) -> list[Block]:
    """Split a function body into basic blocks.

    A label starts a new block; a terminator ends one.  Instructions
    after a terminator but before the next label are unreachable yet
    preserved (they form an anonymous block), so transforms never
    silently drop code the user wrote.
    """
    blocks: list[Block] = []

    def push(block: Block) -> None:
        # Anonymous empty blocks are pure fallthrough (nothing can jump
        # to them) — drop them instead of cluttering the CFG.
        if block.instrs or block.label is not None:
            blocks.append(block)

    current = Block(label=None)
    for item in fn.items:
        if isinstance(item, Label):
            push(current)
            current = Block(label=item.name)
        else:
            current.instrs.append(item)
            if item.is_terminator:
                push(current)
                current = Block(label=None)
    push(current)
    if not blocks:
        blocks.append(Block(label=None))
    return blocks


@dataclass
class CFG:
    """Blocks in layout order plus successor/predecessor index edges."""

    blocks: list[Block]
    names: list[str]                      # unique per-block names
    index: dict[str, int]                 # label -> block index
    succs: list[list[int]]
    preds: list[list[int]]

    @property
    def entry(self) -> int:
        return 0


def build_cfg(fn: Function) -> CFG:
    blocks = form_blocks(fn)
    names: list[str] = []
    index: dict[str, int] = {}
    used = {b.label for b in blocks if b.label is not None}
    anon = 0
    for i, block in enumerate(blocks):
        if block.label is None:
            while f"__b{anon}" in used:
                anon += 1
            name = f"__b{anon}"
            anon += 1
        else:
            name = block.label
        names.append(name)
        index[name] = i

    succs: list[list[int]] = []
    for i, block in enumerate(blocks):
        term = block.terminator
        if term is None:
            succs.append([i + 1] if i + 1 < len(blocks) else [])
        elif term.op == "ret":
            succs.append([])
        else:                              # br / jmp
            succs.append([index[label] for label in term.labels])
    preds: list[list[int]] = [[] for _ in blocks]
    for i, targets in enumerate(succs):
        for t in targets:
            preds[t].append(i)
    return CFG(blocks, names, index, succs, preds)


def to_function(fn: Function, blocks: list[Block]) -> Function:
    """Reassemble a function from (possibly transformed) blocks."""
    items: list[Label | Instr] = []
    for block in blocks:
        if block.label is not None:
            items.append(Label(block.label))
        items.extend(block.instrs)
    return Function(fn.name, fn.params, fn.ret, tuple(items), fn.pos)


def normalize_terminators(fn: Function) -> Function:
    """Give every block an explicit terminator.

    Fallthrough becomes ``jmp``; falling off the end of the function
    becomes ``ret``.  Needed before any transform that reorders blocks
    or redirects edges (LICM's preheader insertion).
    """
    cfg = build_cfg(fn)
    blocks: list[Block] = []
    for i, block in enumerate(cfg.blocks):
        instrs = list(block.instrs)
        # Every block needs a name once edges are explicit.
        label = cfg.names[i] if i > 0 or block.label is not None else block.label
        if block.terminator is None:
            if i + 1 < len(cfg.blocks):
                instrs.append(Instr("jmp", labels=(cfg.names[i + 1],)))
            else:
                instrs.append(Instr("ret"))
        blocks.append(Block(label, instrs))
    return to_function(fn, blocks)


def reachable(cfg: CFG) -> set[int]:
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for t in cfg.succs[stack.pop()]:
            if t not in seen:
                seen.add(t)
                stack.append(t)
    return seen


def dominators(cfg: CFG) -> list[set[int]]:
    """``dom[i]`` = blocks dominating block ``i`` (iterative dataflow).

    Unreachable blocks get the full set (vacuous truth), which keeps
    loop detection conservative about them.
    """
    n = len(cfg.blocks)
    everything = set(range(n))
    dom = [everything.copy() for _ in range(n)]
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for i in range(n):
            if i == cfg.entry:
                continue
            pred_doms = [dom[p] for p in cfg.preds[i]]
            new = set.intersection(*pred_doms) if pred_doms else everything.copy()
            new.add(i)
            if new != dom[i]:
                dom[i] = new
                changed = True
    return dom


@dataclass
class Loop:
    """A natural loop: header plus the set of body blocks (incl. header)."""

    header: int
    body: set[int]
    back_edges: list[int]                 # latch block indices


def natural_loops(cfg: CFG) -> list[Loop]:
    """Back edges (``t -> h`` with ``h`` dominating ``t``) and their loops."""
    dom = dominators(cfg)
    live = reachable(cfg)
    loops: dict[int, Loop] = {}
    for tail in sorted(live):
        for head in cfg.succs[tail]:
            if head in dom[tail]:
                loop = loops.setdefault(head, Loop(head, {head}, []))
                loop.back_edges.append(tail)
                # Walk predecessors backward from the latch to the header.
                stack = [tail]
                while stack:
                    node = stack.pop()
                    if node in loop.body:
                        continue
                    loop.body.add(node)
                    stack.extend(cfg.preds[node])
    return [loops[h] for h in sorted(loops)]


def instr_uses(instr: Instr) -> tuple[str, ...]:
    return instr.args


def liveness(cfg: CFG) -> tuple[list[set[str]], list[set[str]]]:
    """Per-block variable liveness: ``(live_in, live_out)``."""
    n = len(cfg.blocks)
    use: list[set[str]] = []
    defs: list[set[str]] = []
    for block in cfg.blocks:
        u: set[str] = set()
        d: set[str] = set()
        for instr in block.instrs:
            u.update(a for a in instr.args if a not in d)
            if instr.dest is not None:
                d.add(instr.dest)
        use.append(u)
        defs.append(d)
    live_in = [set() for _ in range(n)]
    live_out = [set() for _ in range(n)]
    changed = True
    while changed:
        changed = False
        for i in reversed(range(n)):
            out: set[str] = set()
            for s in cfg.succs[i]:
                out |= live_in[s]
            new_in = use[i] | (out - defs[i])
            if out != live_out[i] or new_in != live_in[i]:
                live_out[i] = out
                live_in[i] = new_in
                changed = True
    return live_in, live_out


def definitely_assigned(cfg: CFG, params: set[str]) -> list[set[str] | None]:
    """Forward must-analysis: vars assigned on *every* path to block entry.

    Returns one set per block (``None`` for unreachable blocks).  The
    checker uses this to reject reads of possibly-uninitialized
    variables, which is what lets the interpreter and the lowered
    program agree without defining a default value for uninitialized
    registers.
    """
    n = len(cfg.blocks)
    gen: list[set[str]] = []
    for block in cfg.blocks:
        g: set[str] = set()
        for instr in block.instrs:
            if instr.dest is not None:
                g.add(instr.dest)
        gen.append(g)
    assigned: list[set[str] | None] = [None] * n
    assigned[cfg.entry] = set(params)
    changed = True
    while changed:
        changed = False
        for i in range(n):
            if i == cfg.entry:
                continue
            incoming = [assigned[p] | gen[p] for p in cfg.preds[i]
                        if assigned[p] is not None]
            if not incoming:
                continue            # not (yet) reachable
            new = set.intersection(*incoming)
            if assigned[i] is None or new != assigned[i]:
                assigned[i] = new
                changed = True
    return assigned
