"""Optimization pass pipeline for IR modules.

Passes are registered by name and composed from a comma-separated
spec (``repro ingest PROG.spam --passes lvn,dce,licm``).  Every pass
is a pure ``Module -> Module`` function that preserves the program's
printed output; the per-pass semantics tests in
``tests/lang/test_passes.py`` enforce this over the whole corpus.
"""

from __future__ import annotations

from repro.lang.ast import Module
from repro.lang.passes import dce, licm, lvn

#: name -> Module transform, in documentation order.
PASSES = {
    "lvn": lvn.run,
    "dce": dce.run,
    "licm": licm.run,
}


def parse_pass_spec(spec: str) -> list[str]:
    """Split ``"lvn,dce"`` into pass names; ValueError on unknown ones."""
    names = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = [name for name in names if name not in PASSES]
    if unknown:
        raise ValueError(
            f"unknown pass(es): {', '.join(unknown)} "
            f"(available: {', '.join(PASSES)})")
    return names


def run_passes(module: Module, names: list[str]) -> Module:
    """Apply the named passes to ``module`` in order."""
    for name in names:
        module = PASSES[name](module)
    return module
