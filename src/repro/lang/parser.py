"""Hand-written lexer and recursive-descent parser for ``.spam`` text.

Syntax (Bril-like)::

    # comment to end of line
    @main {
      n: int = const 10;
      one: int = const 1;
      acc: int = const 0;
      i: int = const 0;
    .loop:
      c: bool = lt i n;
      br c .body .done;
    .body:
      acc: int = add acc i;
      i: int = add i one;
      jmp .loop;
    .done:
      print acc;
      ret;
    }

Functions are ``@name(params): ret { body }`` with ``(params)`` and
``: ret`` optional; labels are ``.name:``; instructions end with ``;``.
Every diagnostic is a :class:`LangError` carrying ``file:line:col``.
"""

from __future__ import annotations

from repro.lang.ast import (
    CONTROL_OPS,
    EFFECT_OP_SIGNATURES,
    BOOL,
    INT,
    TYPES,
    VALUE_OP_SIGNATURES,
    Function,
    Instr,
    Label,
    Module,
    Position,
)


class LangError(Exception):
    """A frontend diagnostic: ``file:line:col: message``."""

    def __init__(self, message: str, filename: str = "<string>",
                 pos: Position | None = None) -> None:
        self.message = message
        self.filename = filename
        self.pos = pos or Position()
        super().__init__(str(self))

    def __str__(self) -> str:
        return f"{self.filename}:{self.pos.line}:{self.pos.col}: {self.message}"


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
#: token kinds: IDENT, FUNC (@name), LABEL (.name), NUM, PUNCT, EOF
_PUNCT = "{}();:=,"


class Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: Position) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.pos})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    tokens: list[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        pos = Position(line, col)
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, pos))
            i += 1
            col += 1
            continue
        if ch in "@.":
            j = i + 1
            while j < n and _is_ident(source[j]):
                j += 1
            name = source[i + 1:j]
            if not name or not _is_ident_start(name[0]):
                kind = "function" if ch == "@" else "label"
                raise LangError(f"malformed {kind} name after {ch!r}",
                                filename, pos)
            tokens.append(Token("FUNC" if ch == "@" else "LABEL", name, pos))
            col += j - i
            i = j
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("NUM", source[i:j], pos))
            col += j - i
            i = j
            continue
        if _is_ident_start(ch):
            j = i + 1
            while j < n and _is_ident(source[j]):
                j += 1
            tokens.append(Token("IDENT", source[i:j], pos))
            col += j - i
            i = j
            continue
        raise LangError(f"unexpected character {ch!r}", filename, pos)
    tokens.append(Token("EOF", "", Position(line, col)))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: list[Token], filename: str) -> None:
        self.tokens = tokens
        self.filename = filename
        self.i = 0

    # -- token plumbing ------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def advance(self) -> Token:
        token = self.cur
        if token.kind != "EOF":
            self.i += 1
        return token

    def error(self, message: str, pos: Position | None = None) -> LangError:
        return LangError(message, self.filename, pos or self.cur.pos)

    def expect_punct(self, ch: str, what: str) -> Token:
        if self.cur.kind != "PUNCT" or self.cur.text != ch:
            raise self.error(
                f"expected {ch!r} {what}, found {self.cur.text!r}"
                if self.cur.kind != "EOF"
                else f"expected {ch!r} {what}, found end of file")
        return self.advance()

    def expect_ident(self, what: str) -> Token:
        if self.cur.kind != "IDENT":
            raise self.error(f"expected {what}, found {self.cur.text!r}")
        return self.advance()

    def expect_type(self) -> str:
        token = self.expect_ident("a type")
        if token.text not in TYPES:
            raise self.error(
                f"unknown type {token.text!r} (one of: {', '.join(TYPES)})",
                token.pos)
        return token.text

    # -- grammar -------------------------------------------------------
    def parse_module(self) -> Module:
        functions: list[Function] = []
        seen: set[str] = set()
        while self.cur.kind != "EOF":
            if self.cur.kind != "FUNC":
                raise self.error(
                    f"expected a function (@name), found {self.cur.text!r}")
            fn = self.parse_function()
            if fn.name in seen:
                raise self.error(f"duplicate function @{fn.name}", fn.pos)
            seen.add(fn.name)
            functions.append(fn)
        if not functions:
            raise self.error("empty module: no functions")
        return Module(tuple(functions), self.filename)

    def parse_function(self) -> Function:
        head = self.advance()            # FUNC token
        params: list[tuple[str, str]] = []
        if self.cur.kind == "PUNCT" and self.cur.text == "(":
            self.advance()
            while not (self.cur.kind == "PUNCT" and self.cur.text == ")"):
                name = self.expect_ident("a parameter name").text
                self.expect_punct(":", "after parameter name")
                params.append((name, self.expect_type()))
                if self.cur.kind == "PUNCT" and self.cur.text == ",":
                    self.advance()
                elif not (self.cur.kind == "PUNCT" and self.cur.text == ")"):
                    raise self.error("expected ',' or ')' in parameter list")
            self.advance()
        ret = None
        if self.cur.kind == "PUNCT" and self.cur.text == ":":
            self.advance()
            ret = self.expect_type()
        self.expect_punct("{", "to open the function body")
        items: list[Label | Instr] = []
        while not (self.cur.kind == "PUNCT" and self.cur.text == "}"):
            if self.cur.kind == "EOF":
                raise self.error(f"unterminated body of @{head.text}")
            if self.cur.kind == "LABEL":
                label = self.advance()
                self.expect_punct(":", "after label")
                items.append(Label(label.text, label.pos))
            else:
                items.append(self.parse_instr())
        self.advance()                   # '}'
        return Function(head.text, tuple(params), ret, tuple(items), head.pos)

    def parse_instr(self) -> Instr:
        start = self.cur
        first = self.expect_ident("an instruction")
        dest = dest_type = None
        if self.cur.kind == "PUNCT" and self.cur.text == ":":
            self.advance()
            dest = first.text
            dest_type = self.expect_type()
            self.expect_punct("=", "after destination type")
            op_token = self.expect_ident("an operation")
        else:
            op_token = first
        op = op_token.text
        value = func = None
        args: list[str] = []
        labels: list[str] = []
        if op == "const":
            value = self.parse_literal(dest_type)
        else:
            if op == "call":
                if self.cur.kind != "FUNC":
                    raise self.error("expected @function after call")
                func = self.advance().text
            while self.cur.kind in ("IDENT", "LABEL"):
                if self.cur.kind == "LABEL":
                    labels.append(self.advance().text)
                else:
                    args.append(self.advance().text)
        self.expect_punct(";", "to end the instruction")
        known = (op in VALUE_OP_SIGNATURES or op in EFFECT_OP_SIGNATURES
                 or op in CONTROL_OPS or op in ("const", "call"))
        if not known:
            raise self.error(f"unknown operation {op!r}", op_token.pos)
        if dest is not None and (op in EFFECT_OP_SIGNATURES
                                 or op in CONTROL_OPS):
            raise self.error(f"{op!r} does not produce a value", op_token.pos)
        if dest is None and (op in VALUE_OP_SIGNATURES or op == "const"):
            raise self.error(
                f"{op!r} needs a destination (write 'x: type = {op} ...')",
                op_token.pos)
        return Instr(op, dest, dest_type, tuple(args), value, func,
                     tuple(labels), start.pos)

    def parse_literal(self, dest_type: str | None) -> int | bool:
        token = self.cur
        if token.kind == "NUM":
            self.advance()
            if dest_type != INT:
                raise self.error(
                    f"integer literal needs an int destination, got "
                    f"{dest_type!r}", token.pos)
            return int(token.text)
        if token.kind == "IDENT" and token.text in ("true", "false"):
            self.advance()
            if dest_type != BOOL:
                raise self.error(
                    f"boolean literal needs a bool destination, got "
                    f"{dest_type!r}", token.pos)
            return token.text == "true"
        raise self.error(f"expected a literal, found {token.text!r}")


def parse_module(source: str, filename: str = "<string>") -> Module:
    """Parse (syntax only) ``.spam`` text into a :class:`Module`.

    Most callers want :func:`repro.lang.load_module`, which also runs
    the semantic checker.
    """
    return _Parser(tokenize(source, filename), filename).parse_module()
