"""Architectural register model.

The ISA exposes 32 integer registers (``r0``-``r31``, with ``r0`` hardwired
to zero) and 32 floating-point registers (``f0``-``f31``).  Register names
are plain strings throughout the code base; this module centralizes name
validation and the architectural register file used by the functional
executor.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32

IREGS: tuple[str, ...] = tuple(f"r{i}" for i in range(NUM_INT_REGS))
FREGS: tuple[str, ...] = tuple(f"f{i}" for i in range(NUM_FP_REGS))
ALL_REGS: frozenset[str] = frozenset(IREGS) | frozenset(FREGS)

ZERO_REG = "r0"


def is_int_reg(name: str) -> bool:
    """Return True if ``name`` names an integer architectural register."""
    return name.startswith("r") and name in ALL_REGS


def is_fp_reg(name: str) -> bool:
    """Return True if ``name`` names a floating-point architectural register."""
    return name.startswith("f") and name in ALL_REGS


def validate_reg(name: str) -> str:
    """Validate a register name, returning it unchanged.

    Raises ``ValueError`` on unknown names so kernel-builder typos surface at
    program-construction time rather than as silent mis-executions.
    """
    if name not in ALL_REGS:
        raise ValueError(f"unknown register {name!r}")
    return name


class ArchRegisterFile:
    """Architectural register state for functional execution.

    Integer registers hold Python ints, floating-point registers hold Python
    floats.  ``r0`` always reads as zero and silently discards writes, as in
    MIPS/RISC-V.
    """

    __slots__ = ("_int", "_fp")

    def __init__(self) -> None:
        self._int: dict[str, int] = {name: 0 for name in IREGS}
        self._fp: dict[str, float] = {name: 0.0 for name in FREGS}

    def read(self, name: str):
        """Read a register by name."""
        if name in self._int:
            return self._int[name]
        if name in self._fp:
            return self._fp[name]
        raise ValueError(f"unknown register {name!r}")

    def write(self, name: str, value) -> None:
        """Write a register by name, coercing to the register class type."""
        if name == ZERO_REG:
            return
        if name in self._int:
            self._int[name] = int(value)
        elif name in self._fp:
            self._fp[name] = float(value)
        else:
            raise ValueError(f"unknown register {name!r}")

    def snapshot(self) -> dict[str, float | int]:
        """Return a copy of all register values (useful in tests)."""
        state: dict[str, float | int] = dict(self._int)
        state.update(self._fp)
        return state
