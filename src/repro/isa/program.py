"""Program and basic-block containers.

A ``Program`` is an ordered list of labelled ``BasicBlock``s.  Linking
assigns a PC to every instruction (4 bytes apart, blocks laid out in order)
and resolves branch target labels.  The containers validate structural
invariants early so kernel bugs surface as ``ProgramError`` rather than as
mysterious simulator behaviour.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, WORD_SIZE
from repro.isa.opcodes import Opcode


class ProgramError(Exception):
    """Raised when a program violates a structural invariant."""


#: Upper bound on a single straight-line segment walk.  A run of more than
#: this many instructions without a conditional branch or HALT (possible
#: only through an unconditional-jump cycle) is recorded as an endless
#: straight run; every practical trace-length cap is far below this.
SEGMENT_WALK_CAP = 1 << 12


class StaticSegment:
    """Summary of the straight-line run starting at one PC.

    The run follows unconditional jumps and ends at the first conditional
    branch (inclusive), at a HALT, or at an unmapped PC.  ``count`` is the
    number of executable instructions in the run; for a branch-terminated
    segment it includes the branch itself and ``taken_pc`` / ``fall_pc``
    give the two successor PCs.  ``halts`` marks runs that reach HALT or
    leave the program before any branch.
    """

    __slots__ = ("count", "branch_pc", "taken_pc", "fall_pc", "halts")

    def __init__(self, count: int, branch_pc: int | None,
                 taken_pc: int, fall_pc: int, halts: bool) -> None:
        self.count = count
        self.branch_pc = branch_pc
        self.taken_pc = taken_pc
        self.fall_pc = fall_pc
        self.halts = halts


class BasicBlock:
    """A labelled straight-line instruction sequence.

    Control flow may only leave through the final instruction (a branch,
    jump, or halt) or by falling through to the next block in program order.
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self.instructions: list[Instruction] = []

    def append(self, inst: Instruction) -> None:
        if self.instructions and self.instructions[-1].is_control:
            if self.instructions[-1].opcode in (Opcode.JMP, Opcode.HALT):
                raise ProgramError(
                    f"block {self.label!r}: instruction after unconditional control flow"
                )
        self.instructions.append(inst)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)


class Program:
    """A linked program: blocks with assigned PCs and resolved targets."""

    def __init__(self, blocks: list[BasicBlock], name: str = "program") -> None:
        if not blocks:
            raise ProgramError("program has no blocks")
        self.name = name
        self.blocks = blocks
        self.label_pc: dict[str, int] = {}
        self.instructions: list[Instruction] = []
        self.by_pc: dict[int, Instruction] = {}
        self._link()

    def _link(self) -> None:
        seen: set[str] = set()
        pc = 0
        for block in self.blocks:
            if block.label in seen:
                raise ProgramError(f"duplicate block label {block.label!r}")
            seen.add(block.label)
            if not block.instructions:
                raise ProgramError(f"block {block.label!r} is empty")
            self.label_pc[block.label] = pc
            pc += WORD_SIZE * len(block.instructions)

        pc = 0
        for block in self.blocks:
            for inst in block.instructions:
                if inst.target is not None and inst.target not in self.label_pc:
                    raise ProgramError(
                        f"block {block.label!r}: unknown target label {inst.target!r}"
                    )
                placed = inst.with_pc(pc)
                self.instructions.append(placed)
                self.by_pc[pc] = placed
                pc += WORD_SIZE

        last = self.instructions[-1]
        if last.opcode is not Opcode.HALT:
            raise ProgramError("program must end with HALT")

        #: Lazily filled per-PC segment summaries (the program is immutable
        #: once linked, so entries never need invalidation).
        self._segments: dict[int, StaticSegment] = {}

    @property
    def entry_pc(self) -> int:
        return 0

    # ------------------------------------------------------------------
    # Precomputed front-end metadata
    # ------------------------------------------------------------------
    def segment_from(self, pc: int) -> StaticSegment:
        """The (cached) straight-line segment summary starting at ``pc``.

        DynaSpAM's predicted-trace walk and the trace-window builder use
        these summaries to hop branch-to-branch instead of probing
        ``by_pc`` instruction-by-instruction.
        """
        seg = self._segments.get(pc)
        if seg is None:
            seg = self._walk_segment(pc)
            self._segments[pc] = seg
        return seg

    def _walk_segment(self, pc: int) -> StaticSegment:
        by_pc = self.by_pc
        cursor = pc
        count = 0
        while count < SEGMENT_WALK_CAP:
            inst = by_pc.get(cursor)
            if inst is None or inst.opcode is Opcode.HALT:
                return StaticSegment(count, None, -1, -1, halts=True)
            count += 1
            if inst.is_branch:
                return StaticSegment(
                    count, cursor, self.target_pc(inst),
                    cursor + WORD_SIZE, halts=False,
                )
            if inst.is_control:  # unconditional jump
                cursor = self.target_pc(inst)
            else:
                cursor += WORD_SIZE
        return StaticSegment(count, None, -1, -1, halts=False)

    def distance_to_next_branch(self, pc: int, limit: int) -> int:
        """Static instruction count from ``pc`` through the next
        conditional branch (inclusive), following unconditional jumps;
        saturates at ``limit`` when no branch is reachable that soon."""
        seg = self.segment_from(pc)
        if seg.halts or seg.branch_pc is None:
            return limit
        return seg.count if seg.count < limit else limit

    def target_pc(self, inst: Instruction) -> int:
        """Resolve the branch/jump target PC of a control instruction."""
        if inst.target is None:
            raise ProgramError(f"instruction {inst} has no target")
        return self.label_pc[inst.target]

    def static_size(self) -> int:
        return len(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"; program {self.name}"]
        pc_to_label = {pc: label for label, pc in self.label_pc.items()}
        for inst in self.instructions:
            if inst.pc in pc_to_label:
                lines.append(f"{pc_to_label[inst.pc]}:")
            lines.append(f"  0x{inst.pc:04x}  {inst}")
        return "\n".join(lines)
