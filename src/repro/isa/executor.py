"""Functional executor: runs a program and emits its dynamic trace.

The cycle-level simulators in ``repro.ooo`` and ``repro.core`` are
trace-driven: they consume the correct-path dynamic instruction stream this
executor produces.  Each ``DynamicInstruction`` carries the resolved branch
outcome and effective memory address, which is everything a timing model
needs; values stay inside the executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.isa.instructions import DynamicInstruction, Instruction, WORD_SIZE
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import ArchRegisterFile


class ExecutionLimitExceeded(Exception):
    """Raised when a program runs past the dynamic instruction limit."""


class Memory:
    """Word-granular sparse memory.

    Addresses are byte addresses and must be word (4-byte) aligned; values
    are Python ints or floats.  Unwritten locations read as zero.
    """

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: dict[int, float | int] = {}

    def load(self, addr: int) -> float | int:
        self._check(addr)
        return self._words.get(addr, 0)

    def store(self, addr: int, value: float | int) -> None:
        self._check(addr)
        self._words[addr] = value

    @staticmethod
    def _check(addr: int) -> None:
        if addr < 0 or addr % WORD_SIZE:
            raise ValueError(f"misaligned or negative address 0x{addr:x}")

    def store_array(self, base: int, values) -> None:
        """Store a sequence of words starting at ``base``."""
        for i, value in enumerate(values):
            self.store(base + i * WORD_SIZE, value)

    def load_array(self, base: int, count: int) -> list[float | int]:
        """Load ``count`` consecutive words starting at ``base``."""
        return [self.load(base + i * WORD_SIZE) for i in range(count)]

    def __len__(self) -> int:
        return len(self._words)


@dataclass
class ExecutionResult:
    """Outcome of a functional run."""

    program: Program
    trace: list[DynamicInstruction]
    registers: ArchRegisterFile
    memory: Memory
    dynamic_count: int = field(init=False)

    def __post_init__(self) -> None:
        self.dynamic_count = len(self.trace)


class FunctionalExecutor:
    """Interprets a ``Program`` against a ``Memory`` image."""

    def __init__(self, max_instructions: int = 5_000_000) -> None:
        self.max_instructions = max_instructions

    def run(
        self,
        program: Program,
        memory: Memory | None = None,
        registers: ArchRegisterFile | None = None,
        collect_trace: bool = True,
    ) -> ExecutionResult:
        """Execute ``program`` to completion and return its dynamic trace."""
        memory = memory if memory is not None else Memory()
        regs = registers if registers is not None else ArchRegisterFile()
        trace: list[DynamicInstruction] = []
        pc = program.entry_pc
        seq = 0
        by_pc = program.by_pc

        while True:
            if seq >= self.max_instructions:
                raise ExecutionLimitExceeded(
                    f"{program.name}: exceeded {self.max_instructions} dynamic instructions"
                )
            inst = by_pc.get(pc)
            if inst is None:
                raise RuntimeError(f"{program.name}: fell off program at pc=0x{pc:x}")

            addr, taken, next_pc, halted = self._step(program, inst, regs, memory, pc)
            if collect_trace:
                trace.append(DynamicInstruction(seq, inst, addr, taken, next_pc))
            seq += 1
            if halted:
                break
            pc = next_pc

        return ExecutionResult(program, trace, regs, memory)

    def _step(
        self,
        program: Program,
        inst: Instruction,
        regs: ArchRegisterFile,
        memory: Memory,
        pc: int,
    ) -> tuple[int | None, bool | None, int, bool]:
        """Execute one instruction; return (mem addr, taken, next pc, halted)."""
        op = inst.opcode
        fallthrough = pc + WORD_SIZE

        def src(i: int):
            return regs.read(inst.srcs[i])

        def second_operand():
            """Second ALU operand: register if present, else immediate."""
            if len(inst.srcs) >= 2:
                return regs.read(inst.srcs[1])
            return inst.imm

        addr: int | None = None
        taken: bool | None = None
        next_pc = fallthrough
        halted = False

        if op is Opcode.ADD:
            regs.write(inst.dest, src(0) + second_operand())
        elif op is Opcode.SUB:
            regs.write(inst.dest, src(0) - second_operand())
        elif op is Opcode.AND:
            regs.write(inst.dest, src(0) & int(second_operand()))
        elif op is Opcode.OR:
            regs.write(inst.dest, src(0) | int(second_operand()))
        elif op is Opcode.XOR:
            regs.write(inst.dest, src(0) ^ int(second_operand()))
        elif op is Opcode.SHL:
            regs.write(inst.dest, src(0) << int(second_operand()))
        elif op is Opcode.SHR:
            regs.write(inst.dest, src(0) >> int(second_operand()))
        elif op is Opcode.SLT:
            regs.write(inst.dest, 1 if src(0) < second_operand() else 0)
        elif op is Opcode.SLE:
            regs.write(inst.dest, 1 if src(0) <= second_operand() else 0)
        elif op is Opcode.SEQ:
            regs.write(inst.dest, 1 if src(0) == second_operand() else 0)
        elif op is Opcode.MIN:
            regs.write(inst.dest, min(src(0), second_operand()))
        elif op is Opcode.MAX:
            regs.write(inst.dest, max(src(0), second_operand()))
        elif op is Opcode.ABS:
            regs.write(inst.dest, abs(src(0)))
        elif op in (Opcode.MOV, Opcode.FMOV):
            regs.write(inst.dest, src(0))
        elif op in (Opcode.LI, Opcode.FLI):
            regs.write(inst.dest, inst.imm)
        elif op is Opcode.MUL:
            regs.write(inst.dest, src(0) * second_operand())
        elif op is Opcode.DIV:
            divisor = second_operand()
            regs.write(inst.dest, 0 if divisor == 0 else int(src(0) / divisor))
        elif op is Opcode.REM:
            divisor = int(second_operand())
            regs.write(inst.dest, 0 if divisor == 0 else src(0) % divisor)
        elif op is Opcode.FADD:
            regs.write(inst.dest, src(0) + second_operand())
        elif op is Opcode.FSUB:
            regs.write(inst.dest, src(0) - second_operand())
        elif op is Opcode.FMUL:
            regs.write(inst.dest, src(0) * second_operand())
        elif op is Opcode.FDIV:
            divisor = second_operand()
            regs.write(inst.dest, 0.0 if divisor == 0 else src(0) / divisor)
        elif op is Opcode.FSQRT:
            value = src(0)
            regs.write(inst.dest, math.sqrt(value) if value > 0 else 0.0)
        elif op is Opcode.FMIN:
            regs.write(inst.dest, min(src(0), second_operand()))
        elif op is Opcode.FMAX:
            regs.write(inst.dest, max(src(0), second_operand()))
        elif op is Opcode.FABS:
            regs.write(inst.dest, abs(src(0)))
        elif op is Opcode.FNEG:
            regs.write(inst.dest, -src(0))
        elif op is Opcode.FSLT:
            regs.write(inst.dest, 1 if src(0) < second_operand() else 0)
        elif op is Opcode.FSLE:
            regs.write(inst.dest, 1 if src(0) <= second_operand() else 0)
        elif op is Opcode.CVTIF:
            regs.write(inst.dest, float(src(0)))
        elif op is Opcode.CVTFI:
            regs.write(inst.dest, int(src(0)))
        elif op in (Opcode.LW, Opcode.FLW):
            addr = int(src(0)) + int(inst.imm or 0)
            regs.write(inst.dest, memory.load(addr))
        elif op in (Opcode.SW, Opcode.FSW):
            addr = int(src(0)) + int(inst.imm or 0)
            memory.store(addr, src(1))
        elif op is Opcode.BEQ:
            taken = src(0) == src(1)
        elif op is Opcode.BNE:
            taken = src(0) != src(1)
        elif op is Opcode.BLT:
            taken = src(0) < src(1)
        elif op is Opcode.BGE:
            taken = src(0) >= src(1)
        elif op is Opcode.JMP:
            next_pc = program.target_pc(inst)
        elif op is Opcode.HALT:
            halted = True
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover - exhaustive over the ISA
            raise RuntimeError(f"unimplemented opcode {op}")

        if taken is not None:
            next_pc = program.target_pc(inst) if taken else fallthrough

        return addr, taken, next_pc, halted
