"""Instruction-set substrate for the DynaSpAM reproduction.

This package defines a small RISC-like ISA, containers for static programs,
a builder DSL for writing kernels, and a functional executor that produces
the dynamic instruction traces consumed by the cycle-level simulators.
"""

from repro.isa.opcodes import FU_LATENCY, Opcode, OpClass
from repro.isa.registers import ArchRegisterFile, FREGS, IREGS, is_fp_reg, is_int_reg
from repro.isa.instructions import DynamicInstruction, Instruction
from repro.isa.program import BasicBlock, Program, ProgramError
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import (
    ExecutionLimitExceeded,
    ExecutionResult,
    FunctionalExecutor,
    Memory,
)

__all__ = [
    "ArchRegisterFile",
    "BasicBlock",
    "DynamicInstruction",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "FREGS",
    "FU_LATENCY",
    "FunctionalExecutor",
    "Instruction",
    "IREGS",
    "Memory",
    "is_fp_reg",
    "is_int_reg",
    "Opcode",
    "OpClass",
    "Program",
    "ProgramBuilder",
    "ProgramError",
]
