"""Static and dynamic instruction records.

``Instruction`` is the static form that lives inside a ``Program``;
``DynamicInstruction`` is one executed instance of it, produced by the
functional executor, carrying the resolved branch outcome and effective
memory address that the trace-driven cycle simulators need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OpClass, latency_of, opclass_of

WORD_SIZE = 4


@dataclass(frozen=True)
class Instruction:
    """A static instruction.

    Parameters
    ----------
    opcode:
        Operation to perform.
    dest:
        Destination register name, or ``None`` for stores/branches.
    srcs:
        Source register names.  For memory ops the first source is the base
        address register; for stores the second source is the value.
    imm:
        Immediate operand (offset for memory ops, literal for LI/FLI,
        shift amounts, ...).
    target:
        Branch/jump target label, resolved to a PC when the program links.
    """

    opcode: Opcode
    dest: str | None = None
    srcs: tuple[str, ...] = ()
    imm: float | int | None = None
    target: str | None = None
    pc: int = field(default=-1, compare=False)

    # Derived metadata, resolved once at construction: the simulators probe
    # these on every dynamic instruction, so they are plain attributes
    # rather than recomputed properties.
    opclass: OpClass = field(init=False, compare=False, repr=False)
    latency: int = field(init=False, compare=False, repr=False)
    is_branch: bool = field(init=False, compare=False, repr=False)
    is_control: bool = field(init=False, compare=False, repr=False)
    is_load: bool = field(init=False, compare=False, repr=False)
    is_store: bool = field(init=False, compare=False, repr=False)
    is_memory: bool = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        opclass = opclass_of(self.opcode)
        set_attr = object.__setattr__  # frozen dataclass
        set_attr(self, "opclass", opclass)
        set_attr(self, "latency", latency_of(self.opcode))
        set_attr(self, "is_branch", opclass is OpClass.BRANCH)
        set_attr(self, "is_control", opclass.is_control)
        set_attr(self, "is_load", opclass is OpClass.LOAD)
        set_attr(self, "is_store", opclass is OpClass.STORE)
        set_attr(self, "is_memory", opclass.is_memory)

    def with_pc(self, pc: int) -> "Instruction":
        """Return a copy of this instruction placed at ``pc``."""
        return Instruction(self.opcode, self.dest, self.srcs, self.imm, self.target, pc)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.opcode.value]
        if self.dest:
            parts.append(self.dest)
        parts.extend(self.srcs)
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"-> {self.target}")
        return " ".join(parts)


class DynamicInstruction:
    """One executed instance of a static instruction.

    Attributes
    ----------
    seq:
        Position in the dynamic instruction stream (0-based).
    static:
        The static ``Instruction`` executed.
    addr:
        Effective byte address for loads/stores, else ``None``.
    taken:
        Branch outcome for branches, else ``None``.
    next_pc:
        PC of the next dynamic instruction (the branch target when taken).
    """

    __slots__ = ("seq", "static", "addr", "taken", "next_pc",
                 "pc", "opcode", "is_branch")

    def __init__(
        self,
        seq: int,
        static: Instruction,
        addr: int | None = None,
        taken: bool | None = None,
        next_pc: int = -1,
    ) -> None:
        self.seq = seq
        self.static = static
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc
        # Flattened from ``static``: probed on every simulated cycle.
        self.pc = static.pc
        self.opcode = static.opcode
        self.is_branch = static.is_branch

    @property
    def opclass(self) -> OpClass:
        return self.static.opclass

    @property
    def dest(self) -> str | None:
        return self.static.dest

    @property
    def srcs(self) -> tuple[str, ...]:
        return self.static.srcs

    @property
    def is_control(self) -> bool:
        return self.static.is_control

    @property
    def is_load(self) -> bool:
        return self.static.is_load

    @property
    def is_store(self) -> bool:
        return self.static.is_store

    @property
    def is_memory(self) -> bool:
        return self.static.is_memory

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.addr is not None:
            extra = f" @0x{self.addr:x}"
        if self.taken is not None:
            extra += f" taken={self.taken}"
        return f"<#{self.seq} pc=0x{self.pc:x} {self.static}{extra}>"
