"""Opcode definitions, operation classes, and functional-unit latencies.

The ISA is deliberately small: enough to express the Rodinia-like kernels
(integer/floating arithmetic, loads/stores, conditional branches) while
staying close to the operation classes the paper's Table 4 configures
(4 Int ALUs, 1 Int MUL/DIV, 4 FP ALUs, 1 FP MUL/DIV, 2 LDST units).
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Functional-unit class an operation executes on."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP)


class Opcode(enum.Enum):
    """Operations of the reproduction ISA."""

    # Integer ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"          # set-if-less-than (signed)
    SLE = "sle"          # set-if-less-or-equal
    SEQ = "seq"          # set-if-equal
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    MOV = "mov"          # register copy / load-immediate when src is r0
    LI = "li"            # load immediate
    # Integer multiply / divide
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FMIN = "fmin"
    FMAX = "fmax"
    FABS = "fabs"
    FNEG = "fneg"
    FMOV = "fmov"
    FLI = "fli"          # load float immediate
    FSLT = "fslt"        # float compare, integer 0/1 result
    FSLE = "fsle"
    CVTIF = "cvtif"      # int -> float
    CVTFI = "cvtfi"      # float -> int (truncate)
    # Memory
    LW = "lw"            # integer load
    SW = "sw"            # integer store
    FLW = "flw"          # float load
    FSW = "fsw"          # float store
    # Control
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    HALT = "halt"
    NOP = "nop"


_INT_ALU_OPS = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SHL, Opcode.SHR, Opcode.SLT, Opcode.SLE, Opcode.SEQ,
        Opcode.MIN, Opcode.MAX, Opcode.ABS, Opcode.MOV, Opcode.LI,
        Opcode.CVTFI,
    }
)
_FP_ALU_OPS = frozenset(
    {
        Opcode.FADD, Opcode.FSUB, Opcode.FMIN, Opcode.FMAX, Opcode.FABS,
        Opcode.FNEG, Opcode.FMOV, Opcode.FLI, Opcode.FSLT, Opcode.FSLE,
        Opcode.CVTIF,
    }
)

OPCODE_CLASS: dict[Opcode, OpClass] = {}
for _op in _INT_ALU_OPS:
    OPCODE_CLASS[_op] = OpClass.INT_ALU
for _op in _FP_ALU_OPS:
    OPCODE_CLASS[_op] = OpClass.FP_ALU
OPCODE_CLASS[Opcode.MUL] = OpClass.INT_MUL
OPCODE_CLASS[Opcode.DIV] = OpClass.INT_DIV
OPCODE_CLASS[Opcode.REM] = OpClass.INT_DIV
OPCODE_CLASS[Opcode.FMUL] = OpClass.FP_MUL
OPCODE_CLASS[Opcode.FDIV] = OpClass.FP_DIV
OPCODE_CLASS[Opcode.FSQRT] = OpClass.FP_DIV
OPCODE_CLASS[Opcode.LW] = OpClass.LOAD
OPCODE_CLASS[Opcode.FLW] = OpClass.LOAD
OPCODE_CLASS[Opcode.SW] = OpClass.STORE
OPCODE_CLASS[Opcode.FSW] = OpClass.STORE
OPCODE_CLASS[Opcode.BEQ] = OpClass.BRANCH
OPCODE_CLASS[Opcode.BNE] = OpClass.BRANCH
OPCODE_CLASS[Opcode.BLT] = OpClass.BRANCH
OPCODE_CLASS[Opcode.BGE] = OpClass.BRANCH
OPCODE_CLASS[Opcode.JMP] = OpClass.JUMP
OPCODE_CLASS[Opcode.HALT] = OpClass.JUMP
OPCODE_CLASS[Opcode.NOP] = OpClass.NOP

# Execution latency (cycles) per functional-unit class.  Loads add cache
# access latency on top of their address-generation cycle; the value here is
# the address-generation cost only.
FU_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 12,
    OpClass.FP_ALU: 2,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 12,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.NOP: 1,
}

# Whether a functional unit of the class is pipelined (new op every cycle)
# or blocks until the in-flight op completes.
FU_PIPELINED: dict[OpClass, bool] = {
    OpClass.INT_ALU: True,
    OpClass.INT_MUL: True,
    OpClass.INT_DIV: False,
    OpClass.FP_ALU: True,
    OpClass.FP_MUL: True,
    OpClass.FP_DIV: False,
    OpClass.LOAD: True,
    OpClass.STORE: True,
    OpClass.BRANCH: True,
    OpClass.JUMP: True,
    OpClass.NOP: True,
}


def opclass_of(opcode: Opcode) -> OpClass:
    """Return the functional-unit class of ``opcode``."""
    return OPCODE_CLASS[opcode]


def latency_of(opcode: Opcode) -> int:
    """Return the base execution latency of ``opcode`` in cycles."""
    return FU_LATENCY[OPCODE_CLASS[opcode]]
