"""Assembly-builder DSL for writing kernels.

Kernels are written as Python methods emitting one instruction per call::

    b = ProgramBuilder("dot")
    b.label("loop")
    b.flw("f1", "r1", 0)
    b.flw("f2", "r2", 0)
    b.fmul("f3", "f1", "f2")
    b.fadd("f4", "f4", "f3")
    b.addi("r1", "r1", 4)
    b.addi("r2", "r2", 4)
    b.addi("r3", "r3", -1)
    b.bne("r3", "r0", "loop")
    b.halt()
    program = b.build()

Every emit method validates register names eagerly.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock, Program, ProgramError
from repro.isa.registers import validate_reg


class ProgramBuilder:
    """Incrementally builds a ``Program`` out of emitted instructions."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._blocks: list[BasicBlock] = [BasicBlock("entry")]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def label(self, name: str) -> None:
        """Start a new basic block named ``name``."""
        if not self._blocks[-1].instructions and self._blocks[-1].label == "entry" \
                and len(self._blocks) == 1:
            # Allow renaming an unused implicit entry block.
            self._blocks[-1] = BasicBlock(name)
            return
        self._blocks.append(BasicBlock(name))

    def _emit(
        self,
        opcode: Opcode,
        dest: str | None = None,
        srcs: tuple[str, ...] = (),
        imm: float | int | None = None,
        target: str | None = None,
    ) -> None:
        if dest is not None:
            validate_reg(dest)
        for src in srcs:
            validate_reg(src)
        self._blocks[-1].append(Instruction(opcode, dest, srcs, imm, target))

    def raw(
        self,
        opcode: Opcode,
        dest: str | None = None,
        srcs: tuple[str, ...] = (),
        imm: float | int | None = None,
        target: str | None = None,
    ) -> None:
        """Emit an instruction the convenience methods don't cover
        (e.g. register-register shifts, used by ``repro.lang.lower``)."""
        self._emit(opcode, dest, srcs, imm, target)

    def build(self) -> Program:
        """Link and return the finished program."""
        return Program(self._blocks, name=self.name)

    # ------------------------------------------------------------------
    # Loop helpers
    # ------------------------------------------------------------------
    @contextmanager
    def countdown(self, label: str, counter: str, count: int | None = None):
        """Counted loop running the body ``count`` times (``counter`` counts
        down to zero).  If ``count`` is None the counter register must have
        been initialized by the caller and must be positive."""
        if count is not None:
            if count < 1:
                raise ProgramError(f"loop {label!r}: count must be >= 1")
            self.li(counter, count)
        self.label(label)
        yield
        self.addi(counter, counter, -1)
        self.bne(counter, "r0", label)

    @contextmanager
    def for_up(self, label: str, idx: str, bound: str):
        """Up-counting loop: ``for idx in 0..bound-1`` with ``bound`` in a
        register (must be >= 1 at runtime)."""
        self.li(idx, 0)
        self.label(label)
        yield
        self.addi(idx, idx, 1)
        self.blt(idx, bound, label)

    # ------------------------------------------------------------------
    # Integer ALU
    # ------------------------------------------------------------------
    def add(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.ADD, d, (a, b))

    def addi(self, d: str, a: str, imm: int) -> None:
        self._emit(Opcode.ADD, d, (a,), imm=imm)

    def sub(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.SUB, d, (a, b))

    def subi(self, d: str, a: str, imm: int) -> None:
        self._emit(Opcode.SUB, d, (a,), imm=imm)

    def and_(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.AND, d, (a, b))

    def andi(self, d: str, a: str, imm: int) -> None:
        self._emit(Opcode.AND, d, (a,), imm=imm)

    def or_(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.OR, d, (a, b))

    def xor(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.XOR, d, (a, b))

    def xori(self, d: str, a: str, imm: int) -> None:
        self._emit(Opcode.XOR, d, (a,), imm=imm)

    def shl(self, d: str, a: str, imm: int) -> None:
        self._emit(Opcode.SHL, d, (a,), imm=imm)

    def shr(self, d: str, a: str, imm: int) -> None:
        self._emit(Opcode.SHR, d, (a,), imm=imm)

    def slt(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.SLT, d, (a, b))

    def slti(self, d: str, a: str, imm: int) -> None:
        self._emit(Opcode.SLT, d, (a,), imm=imm)

    def sle(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.SLE, d, (a, b))

    def seq(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.SEQ, d, (a, b))

    def min_(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.MIN, d, (a, b))

    def max_(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.MAX, d, (a, b))

    def abs_(self, d: str, a: str) -> None:
        self._emit(Opcode.ABS, d, (a,))

    def mov(self, d: str, a: str) -> None:
        self._emit(Opcode.MOV, d, (a,))

    def li(self, d: str, imm: int) -> None:
        self._emit(Opcode.LI, d, (), imm=imm)

    # ------------------------------------------------------------------
    # Integer multiply / divide
    # ------------------------------------------------------------------
    def mul(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.MUL, d, (a, b))

    def muli(self, d: str, a: str, imm: int) -> None:
        self._emit(Opcode.MUL, d, (a,), imm=imm)

    def div(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.DIV, d, (a, b))

    def rem(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.REM, d, (a, b))

    def remi(self, d: str, a: str, imm: int) -> None:
        self._emit(Opcode.REM, d, (a,), imm=imm)

    # ------------------------------------------------------------------
    # Floating point
    # ------------------------------------------------------------------
    def fadd(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.FADD, d, (a, b))

    def fsub(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.FSUB, d, (a, b))

    def fmul(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.FMUL, d, (a, b))

    def fdiv(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.FDIV, d, (a, b))

    def fsqrt(self, d: str, a: str) -> None:
        self._emit(Opcode.FSQRT, d, (a,))

    def fmin(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.FMIN, d, (a, b))

    def fmax(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.FMAX, d, (a, b))

    def fabs(self, d: str, a: str) -> None:
        self._emit(Opcode.FABS, d, (a,))

    def fneg(self, d: str, a: str) -> None:
        self._emit(Opcode.FNEG, d, (a,))

    def fmov(self, d: str, a: str) -> None:
        self._emit(Opcode.FMOV, d, (a,))

    def fli(self, d: str, imm: float) -> None:
        self._emit(Opcode.FLI, d, (), imm=imm)

    def fslt(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.FSLT, d, (a, b))

    def fsle(self, d: str, a: str, b: str) -> None:
        self._emit(Opcode.FSLE, d, (a, b))

    def cvtif(self, d: str, a: str) -> None:
        self._emit(Opcode.CVTIF, d, (a,))

    def cvtfi(self, d: str, a: str) -> None:
        self._emit(Opcode.CVTFI, d, (a,))

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def lw(self, d: str, base: str, offset: int = 0) -> None:
        self._emit(Opcode.LW, d, (base,), imm=offset)

    def sw(self, base: str, value: str, offset: int = 0) -> None:
        self._emit(Opcode.SW, None, (base, value), imm=offset)

    def flw(self, d: str, base: str, offset: int = 0) -> None:
        self._emit(Opcode.FLW, d, (base,), imm=offset)

    def fsw(self, base: str, value: str, offset: int = 0) -> None:
        self._emit(Opcode.FSW, None, (base, value), imm=offset)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def beq(self, a: str, b: str, target: str) -> None:
        self._emit(Opcode.BEQ, None, (a, b), target=target)

    def bne(self, a: str, b: str, target: str) -> None:
        self._emit(Opcode.BNE, None, (a, b), target=target)

    def blt(self, a: str, b: str, target: str) -> None:
        self._emit(Opcode.BLT, None, (a, b), target=target)

    def bge(self, a: str, b: str, target: str) -> None:
        self._emit(Opcode.BGE, None, (a, b), target=target)

    def jmp(self, target: str) -> None:
        self._emit(Opcode.JMP, None, (), target=target)

    def halt(self) -> None:
        self._emit(Opcode.HALT)

    def nop(self) -> None:
        self._emit(Opcode.NOP)
