"""DynaSpAM (ISCA 2015) reproduction library.

Subpackages
-----------
``repro.isa``
    RISC-like instruction set, program builder, functional executor.
``repro.workloads``
    Eleven Rodinia-like kernel analogs plus a suite registry.
``repro.ooo``
    Trace-driven cycle-level out-of-order pipeline (the GEM5 stand-in).
``repro.fabric``
    Stripe-organized reconfigurable spatial fabric and its timing model.
``repro.core``
    The paper's contribution: trace detection (T-Cache), resource-aware
    dynamic mapping (Algorithms 1-3), configuration cache, and trace
    offloading as fat atomic instructions.
``repro.energy``
    McPAT/CACTI stand-ins: event-based energy accounting and area model.
``repro.harness``
    Experiment drivers regenerating every evaluation table and figure.
"""

__version__ = "1.0.0"
