"""Benchmark registry and trace generation.

``BENCHMARKS`` maps the paper's Table 3 abbreviations to ``Benchmark``
records; ``generate_trace`` runs a kernel functionally and caches the
resulting dynamic trace (trace generation dominates test runtime otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa.executor import ExecutionResult, FunctionalExecutor, Memory
from repro.isa.program import Program
from repro.workloads.kernels import (
    bfs,
    bp,
    btree,
    hotspot,
    kmeans,
    knn,
    lud,
    nw,
    particlefilter,
    pathfinder,
    srad,
)


@dataclass(frozen=True)
class Benchmark:
    """A registered kernel analog (one row of the paper's Table 3)."""

    abbrev: str
    name: str
    domain: str
    kernel: str
    description: str
    builder: Callable[[float], tuple[Program, Memory]]

    def build(self, scale: float = 1.0) -> tuple[Program, Memory]:
        return self.builder(scale)


def _register(module) -> Benchmark:
    meta = module.META
    return Benchmark(
        abbrev=meta["abbrev"],
        name=meta["name"],
        domain=meta["domain"],
        kernel=meta["kernel"],
        description=meta["description"],
        builder=module.build,
    )


_MODULES = (bp, bfs, btree, hotspot, kmeans, lud, knn, nw, pathfinder,
            particlefilter, srad)

#: Table 3 order: BP, BFS, BT, HS, KM, LD, KNN, NW, PF, PTF, SRAD.
BENCHMARKS: dict[str, Benchmark] = {
    bench.abbrev: bench for bench in (_register(m) for m in _MODULES)
}

ALL_ABBREVS: tuple[str, ...] = tuple(BENCHMARKS)

_TRACE_CACHE: dict[tuple[str, float], ExecutionResult] = {}


def get_benchmark(abbrev: str) -> Benchmark:
    """Look up a benchmark by its Table 3 abbreviation (e.g. ``"KM"``)."""
    try:
        return BENCHMARKS[abbrev]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {abbrev!r}; available: {', '.join(BENCHMARKS)}"
        ) from None


def generate_trace(abbrev: str, scale: float = 1.0) -> ExecutionResult:
    """Functionally execute a benchmark and return its (cached) trace.

    Traces resolve through the in-process cache, then the on-disk cache
    (parallel sweep workers share generated traces this way), and are
    regenerated only when both miss.
    """
    key = (abbrev, scale)
    if key not in _TRACE_CACHE:
        # Imported lazily: workloads sit below the harness layer.
        import repro.harness.diskcache as diskcache

        disk = diskcache.shared_cache("traces")
        result = disk.get(("trace", abbrev, scale)) if disk else None
        if result is None:
            program, memory = get_benchmark(abbrev).build(scale)
            result = FunctionalExecutor(max_instructions=20_000_000).run(
                program, memory
            )
            if disk is not None:
                disk.put(("trace", abbrev, scale), result)
        _TRACE_CACHE[key] = result
    return _TRACE_CACHE[key]


def clear_trace_cache() -> None:
    """Drop all cached traces (tests use this to bound memory)."""
    _TRACE_CACHE.clear()


# ---------------------------------------------------------------------------
# Ingested programs (repro.lang frontend)
# ---------------------------------------------------------------------------
#: Abbreviation prefix for frontend-ingested programs.  These register in
#: ``BENCHMARKS`` (so traces, run keys, and reports work unchanged) but are
#: deliberately absent from ``ALL_ABBREVS``, which stays the 11 Table 3
#: kernels that sweeps and the bench dashboard iterate by default.
PROGRAM_PREFIX = "PROG:"


def program_abbrev(source: str, stem: str, passes: tuple[str, ...] = ()) -> str:
    """Content-hash-bearing abbreviation for an ingested program.

    The hash covers the source text *and* the pass pipeline, so editing a
    ``.spam`` file (or changing ``--passes``) yields a new abbreviation and
    therefore fresh disk-cache keys — stale traces and run results can never
    be replayed against modified programs.
    """
    import hashlib

    digest = hashlib.sha256(
        (source + "\x00" + ",".join(passes)).encode()
    ).hexdigest()[:12].upper()
    return f"{PROGRAM_PREFIX}{stem}:{digest}"


def register_program(path: str, passes: tuple[str, ...] = ()) -> Benchmark:
    """Parse, check, optionally optimize, and register a ``.spam`` program.

    Returns the registered ``Benchmark``; repeated calls with identical
    source and passes are idempotent (same abbreviation, same entry).
    Raises ``repro.lang.LangError`` on parse/check failures and
    ``ValueError`` on an unknown pass name.
    """
    import copy
    import pathlib

    # Imported lazily: the frontend is optional for trace-only workflows.
    from repro.lang import load_module, lower_module, run_passes

    text = pathlib.Path(path).read_text()
    stem = pathlib.Path(path).stem
    abbrev = program_abbrev(text, stem, passes)
    if abbrev in BENCHMARKS:
        return BENCHMARKS[abbrev]

    module = load_module(text, filename=str(path))
    if passes:
        module = run_passes(copy.deepcopy(module), list(passes))
    lowered = lower_module(module, name=stem)

    def builder(scale: float, _lowered=lowered) -> tuple[Program, Memory]:
        # Ingested programs have one fixed problem size; ``scale`` is part
        # of the builder signature for registry compatibility only.
        return _lowered.program, Memory()

    bench = Benchmark(
        abbrev=abbrev,
        name=stem,
        domain="Ingested",
        kernel=stem,
        description=(
            f"frontend program {path}"
            + (f" (passes: {','.join(passes)})" if passes else "")
        ),
        builder=builder,
    )
    BENCHMARKS[abbrev] = bench
    return bench


def discover_programs(directory: str,
                      passes: tuple[str, ...] = ()) -> list[Benchmark]:
    """Register every ``*.spam`` file under ``directory`` (sorted by name)."""
    import pathlib

    root = pathlib.Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"not a directory: {directory}")
    found = sorted(root.glob("*.spam"))
    if not found:
        raise FileNotFoundError(f"no .spam programs under {directory}")
    return [register_program(str(p), passes) for p in found]
