"""Workload characterization: instruction mix, branch and memory behavior.

The paper's future-work paragraph proposes "adjust[ing] the number of
functional units according to instruction type distributions of the
benchmarks"; this module computes those distributions (plus the branch and
locality properties that drive trace detection quality), and the harness
exposes them as a characterization table.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.instructions import DynamicInstruction
from repro.isa.opcodes import OpClass
from repro.ooo.fus import POOL_OF


@dataclass
class WorkloadProfile:
    """Static-and-dynamic characterization of one benchmark trace."""

    name: str
    dynamic_instructions: int = 0
    pool_mix: dict[str, float] = field(default_factory=dict)
    class_mix: dict[str, float] = field(default_factory=dict)
    branch_fraction: float = 0.0
    taken_fraction: float = 0.0
    memory_fraction: float = 0.0
    load_fraction: float = 0.0
    store_fraction: float = 0.0
    unique_pcs: int = 0
    unique_blocks_touched: int = 0
    mean_block_run: float = 0.0   # consecutive instructions between branches

    def dominant_pool(self) -> str:
        return max(self.pool_mix, key=self.pool_mix.get)


def characterize(name: str, trace: list[DynamicInstruction],
                 block_bytes: int = 64) -> WorkloadProfile:
    """Profile a dynamic trace."""
    profile = WorkloadProfile(name=name, dynamic_instructions=len(trace))
    if not trace:
        return profile

    pools = Counter()
    classes = Counter()
    pcs = set()
    data_blocks = set()
    branches = taken = loads = stores = 0
    run_lengths = []
    current_run = 0

    for dyn in trace:
        pcs.add(dyn.pc)
        pools[POOL_OF[dyn.opclass]] += 1
        classes[dyn.opclass.value] += 1
        current_run += 1
        if dyn.is_branch:
            branches += 1
            taken += bool(dyn.taken)
            run_lengths.append(current_run)
            current_run = 0
        if dyn.is_load:
            loads += 1
        if dyn.is_store:
            stores += 1
        if dyn.addr is not None:
            data_blocks.add(dyn.addr // block_bytes)

    total = len(trace)
    profile.pool_mix = {pool: count / total for pool, count in pools.items()}
    profile.class_mix = {cls: count / total for cls, count in classes.items()}
    profile.branch_fraction = branches / total
    profile.taken_fraction = taken / branches if branches else 0.0
    profile.memory_fraction = (loads + stores) / total
    profile.load_fraction = loads / total
    profile.store_fraction = stores / total
    profile.unique_pcs = len(pcs)
    profile.unique_blocks_touched = len(data_blocks)
    profile.mean_block_run = (
        sum(run_lengths) / len(run_lengths) if run_lengths else float(total)
    )
    return profile


def pool_demand(profile: WorkloadProfile) -> dict[str, float]:
    """Relative per-pool demand, normalized so int_alu = 1.0.

    The tuner sizes stripe pools proportionally to this demand vector.
    """
    base = profile.pool_mix.get("int_alu", 0.0) or 1e-9
    return {
        pool: profile.pool_mix.get(pool, 0.0) / base
        for pool in ("int_alu", "int_muldiv", "fp_alu", "fp_muldiv", "ldst")
    }
