"""Deterministic synthetic data sets for the kernel analogs.

Every generator is seeded so traces are reproducible run to run; the paper's
evaluation depends on stable trace identities (PC + branch outcomes), which
in turn depend on stable input data.
"""

from __future__ import annotations

import random

from repro.isa.instructions import WORD_SIZE


def rng(seed: int) -> random.Random:
    """A deterministic random stream for a kernel (one per data set)."""
    return random.Random(0x5EED ^ seed)


def floats(n: int, lo: float, hi: float, seed: int) -> list[float]:
    """``n`` uniform floats in ``[lo, hi)``."""
    r = rng(seed)
    return [lo + (hi - lo) * r.random() for _ in range(n)]

def ints(n: int, lo: int, hi: int, seed: int) -> list[int]:
    """``n`` uniform ints in ``[lo, hi]``."""
    r = rng(seed)
    return [r.randint(lo, hi) for _ in range(n)]


def csr_graph(num_nodes: int, avg_degree: int, seed: int) -> tuple[list[int], list[int]]:
    """Random directed graph in CSR form: (offsets[n+1], edges[m]).

    Node 0 can reach most of the graph (edges are biased toward forward
    progress plus random back edges), which gives BFS the mix of visited /
    unvisited checks that makes its branches unbiased — the property the
    paper's Table 5 highlights for BFS.
    """
    r = rng(seed)
    adjacency: list[list[int]] = [[] for _ in range(num_nodes)]
    for node in range(num_nodes - 1):
        adjacency[node].append(node + 1)  # spine guarantees reachability
    extra = max(0, avg_degree - 1)
    for node in range(num_nodes):
        for _ in range(extra):
            adjacency[node].append(r.randrange(num_nodes))
    offsets = [0]
    edges: list[int] = []
    for node in range(num_nodes):
        edges.extend(adjacency[node])
        offsets.append(len(edges))
    return offsets, edges


class BPlusTree:
    """A static B+ tree laid out in flat arrays for the BT kernel.

    Layout (``order`` keys per node):
      ``keys[node * order + k]``      sorted keys, padded with +inf sentinel
      ``children[node * (order + 1) + k]``  child node ids (internal nodes)
      ``is_leaf[node]``               1 for leaves
      ``values[node * order + k]``    payloads (leaves only)
    """

    def __init__(self, keys: list[int], order: int = 4) -> None:
        self.order = order
        sorted_keys = sorted(keys)
        sentinel = 1 << 30
        # Build leaves.
        leaves = [sorted_keys[i:i + order] for i in range(0, len(sorted_keys), order)]
        nodes: list[dict] = []
        level = []
        for leaf_keys in leaves:
            node_id = len(nodes)
            nodes.append({
                "keys": leaf_keys + [sentinel] * (order - len(leaf_keys)),
                "children": [0] * (order + 1),
                "leaf": 1,
                "values": [k * 2 + 1 for k in leaf_keys] + [0] * (order - len(leaf_keys)),
            })
            level.append((node_id, leaf_keys[0]))
        # Build internal levels bottom-up.
        while len(level) > 1:
            next_level = []
            for i in range(0, len(level), order + 1):
                group = level[i:i + order + 1]
                node_id = len(nodes)
                separators = [first_key for _, first_key in group[1:]]
                nodes.append({
                    "keys": separators + [sentinel] * (order - len(separators)),
                    "children": [cid for cid, _ in group] + [0] * (order + 1 - len(group)),
                    "leaf": 0,
                    "values": [0] * order,
                })
                next_level.append((node_id, group[0][1]))
            level = next_level
        self.root = level[0][0]
        self.sentinel = sentinel
        self.keys = [k for node in nodes for k in node["keys"]]
        self.children = [c for node in nodes for c in node["children"]]
        self.is_leaf = [node["leaf"] for node in nodes]
        self.values = [v for node in nodes for v in node["values"]]
        self.num_nodes = len(nodes)

    def lookup(self, key: int) -> int:
        """Reference search used to validate the kernel's results."""
        node = self.root
        order = self.order
        while not self.is_leaf[node]:
            base = node * order
            child = 0
            while child < order and self.keys[base + child] <= key:
                child += 1
            node = self.children[node * (order + 1) + child]
        base = node * order
        for k in range(order):
            if self.keys[base + k] == key:
                return self.values[base + k]
        return 0


def words(base: int, index: int) -> int:
    """Byte address of word ``index`` in an array at ``base``."""
    return base + index * WORD_SIZE
