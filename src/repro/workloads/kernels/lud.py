"""LD — LU Decomposition (Rodinia ``lud_base``).

In-place Doolittle LU factorization of a dense matrix.  Triangular loop
bounds shrink as the factorization proceeds, which creates the several
distinct hot traces the paper reports for LD (9 mapped, 5 offloaded).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

MATRIX_BASE = 0x1_0000

META = {
    "abbrev": "LD",
    "name": "LU Decomposition",
    "domain": "Linear Algebra",
    "kernel": "lud_base",
    "description": "Matrix decomposition",
}


def problem_size(scale: float) -> int:
    return max(4, int(26 * (scale ** (1.0 / 3.0))))


def _matrix(n: int) -> list[float]:
    values = data.floats(n * n, 0.1, 1.0, seed=61)
    # Diagonal dominance keeps the factorization numerically tame.
    for i in range(n):
        values[i * n + i] += n
    return values


def build(scale: float = 1.0) -> tuple:
    n = problem_size(scale)
    mem = Memory()
    mem.store_array(MATRIX_BASE, _matrix(n))

    row_bytes = n * WORD_SIZE
    b = ProgramBuilder("lud")
    b.li("r28", n)
    b.li("r1", 0)                       # k (pivot index)
    b.label("ld_pivot")
    # Pivot element address: base + (k*n + k)*4.
    b.muli("r3", "r1", row_bytes)
    b.li("r4", MATRIX_BASE)
    b.add("r4", "r4", "r3")             # row k base
    b.shl("r5", "r1", 2)
    b.add("r6", "r4", "r5")             # &A[k][k]
    b.flw("f1", "r6", 0)                # pivot value
    b.addi("r2", "r1", 1)               # i = k + 1
    b.bge("r2", "r28", "ld_next_pivot")
    b.label("ld_row")
    b.muli("r7", "r2", row_bytes)
    b.li("r8", MATRIX_BASE)
    b.add("r8", "r8", "r7")             # row i base
    b.add("r9", "r8", "r5")             # &A[i][k]
    b.flw("f2", "r9", 0)
    b.fdiv("f2", "f2", "f1")            # multiplier
    b.fsw("r9", "f2", 0)                # A[i][k] = multiplier
    b.addi("r10", "r1", 1)              # j = k + 1
    b.bge("r10", "r28", "ld_row_done")
    b.shl("r11", "r10", 2)
    b.add("r12", "r8", "r11")           # &A[i][j]
    b.add("r13", "r4", "r11")           # &A[k][j]
    b.label("ld_col")
    b.flw("f3", "r13", 0)               # A[k][j]
    b.flw("f4", "r12", 0)               # A[i][j]
    b.fmul("f5", "f2", "f3")
    b.fsub("f4", "f4", "f5")
    b.fsw("r12", "f4", 0)
    b.addi("r12", "r12", WORD_SIZE)
    b.addi("r13", "r13", WORD_SIZE)
    b.addi("r10", "r10", 1)
    b.blt("r10", "r28", "ld_col")
    b.label("ld_row_done")
    b.addi("r2", "r2", 1)
    b.blt("r2", "r28", "ld_row")
    b.label("ld_next_pivot")
    b.addi("r1", "r1", 1)
    b.blt("r1", "r28", "ld_pivot")
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> list[float]:
    """In-place LU factorization in Python (combined L\\U matrix)."""
    n = problem_size(scale)
    a = _matrix(n)
    for k in range(n):
        pivot = a[k * n + k]
        for i in range(k + 1, n):
            mult = a[i * n + k] / pivot
            a[i * n + k] = mult
            for j in range(k + 1, n):
                a[i * n + j] -= mult * a[k * n + j]
    return a
