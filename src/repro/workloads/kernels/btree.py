"""BT — B+ Tree search (Rodinia ``kernel_cpu``).

Searches a batch of keys through a statically built order-4 B+ tree laid out
in flat arrays.  Node descent and intra-node key scans give short
data-dependent branch sequences, matching the handful of mapped traces the
paper reports for BT.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

KEYS_BASE = 0x1_0000
CHILD_BASE = 0x2_1000
LEAF_BASE = 0x3_2000
VALS_BASE = 0x4_3000
QUERY_BASE = 0x5_4000
RESULT_BASE = 0x6_5000

# Wide nodes, like Rodinia's order-256 B+ tree: long linear scans per node
# dominate the dynamic instruction stream.
ORDER = 32
NUM_TREE_KEYS = 1024

META = {
    "abbrev": "BT",
    "name": "B+ Tree",
    "domain": "Search",
    "kernel": "kernel_cpu",
    "description": "Search in a B+ tree",
}


def problem_size(scale: float) -> int:
    return max(4, int(150 * scale))


def _dataset(scale: float):
    num_queries = problem_size(scale)
    tree_keys = sorted(set(data.ints(NUM_TREE_KEYS * 3, 0, 100_000, seed=41)))[:NUM_TREE_KEYS]
    tree = data.BPlusTree(tree_keys, order=ORDER)
    hits = data.ints(num_queries, 0, len(tree_keys) - 1, seed=42)
    # Half the queries hit existing keys, half probe random values.
    probes = data.ints(num_queries, 0, 100_000, seed=43)
    queries = [
        tree_keys[hits[i]] if i % 2 == 0 else probes[i]
        for i in range(num_queries)
    ]
    return tree, queries


def build(scale: float = 1.0) -> tuple:
    tree, queries = _dataset(scale)

    mem = Memory()
    mem.store_array(KEYS_BASE, tree.keys)
    mem.store_array(CHILD_BASE, tree.children)
    mem.store_array(LEAF_BASE, tree.is_leaf)
    mem.store_array(VALS_BASE, tree.values)
    mem.store_array(QUERY_BASE, queries)

    b = ProgramBuilder("btree")
    b.li("r26", QUERY_BASE)
    b.li("r27", RESULT_BASE)
    b.li("r25", ORDER)
    with b.countdown("bt_query", "r30", len(queries)):
        b.lw("r5", "r26", 0)            # key
        b.li("r6", tree.root)           # current node
        b.label("bt_descend")
        # Branchless separator scan (a compiler predicates these short
        # fixed-trip scans at -O3): child = #separators <= key.
        b.muli("r10", "r6", ORDER)      # key base index
        b.shl("r13", "r10", 2)
        b.li("r14", KEYS_BASE)
        b.add("r14", "r14", "r13")      # &keys[node][0]
        b.li("r11", 0)                  # child slot accumulator
        with b.countdown("bt_scan", "r23", ORDER):
            b.lw("r15", "r14", 0)
            b.sle("r16", "r15", "r5")   # separator <= key ?
            b.add("r11", "r11", "r16")
            b.addi("r14", "r14", WORD_SIZE)
        b.muli("r16", "r6", ORDER + 1)
        b.add("r16", "r16", "r11")
        b.shl("r17", "r16", 2)
        b.li("r18", CHILD_BASE)
        b.add("r18", "r18", "r17")
        b.lw("r6", "r18", 0)            # node = children[...]
        # Leaf check: data dependent but shallow-periodic (depth ~2).
        b.shl("r7", "r6", 2)
        b.li("r8", LEAF_BASE)
        b.add("r8", "r8", "r7")
        b.lw("r9", "r8", 0)
        b.beq("r9", "r0", "bt_descend")
        # Branchless leaf scan: result = sum(match * value).
        b.muli("r10", "r6", ORDER)
        b.shl("r13", "r10", 2)
        b.li("r14", KEYS_BASE)
        b.add("r14", "r14", "r13")
        b.li("r19", VALS_BASE)
        b.add("r19", "r19", "r13")
        b.li("r20", 0)                  # result value (0 = miss)
        with b.countdown("bt_leafscan", "r23", ORDER):
            b.lw("r15", "r14", 0)
            b.seq("r16", "r15", "r5")   # exact match ?
            b.lw("r21", "r19", 0)
            b.mul("r22", "r16", "r21")
            b.add("r20", "r20", "r22")
            b.addi("r14", "r14", WORD_SIZE)
            b.addi("r19", "r19", WORD_SIZE)
        b.sw("r27", "r20", 0)
        b.addi("r26", "r26", WORD_SIZE)
        b.addi("r27", "r27", WORD_SIZE)
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> list[int]:
    """Reference lookup results for every query."""
    tree, queries = _dataset(scale)
    return [tree.lookup(q) for q in queries]
