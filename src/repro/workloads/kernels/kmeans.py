"""KM — Kmeans clustering (Rodinia ``kmeans_clustering``).

One assignment pass: each point is assigned to the nearest of K cluster
centers by squared Euclidean distance.  The hot loop is the feature-distance
accumulation — short, FP-multiply heavy, and highly biased branches, which is
why KM maps to a single long-lived configuration in the paper's Table 5.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

POINTS_BASE = 0x1_0000
CENTERS_BASE = 0x2_1000
ASSIGN_BASE = 0x3_2000

NUM_FEATURES = 24   # divisible by 3: trace anchors stay loop-aligned
NUM_CLUSTERS = 4

META = {
    "abbrev": "KM",
    "name": "Kmeans",
    "domain": "Data Mining",
    "kernel": "kmeans_clustering",
    "description": "Clustering algorithm for data-mining",
}


def problem_size(scale: float) -> int:
    return max(4, int(68 * scale))


def build(scale: float = 1.0) -> tuple:
    """Build the KM program and its memory image."""
    num_points = problem_size(scale)
    points = data.floats(num_points * NUM_FEATURES, -10.0, 10.0, seed=11)
    centers = data.floats(NUM_CLUSTERS * NUM_FEATURES, -10.0, 10.0, seed=12)

    mem = Memory()
    mem.store_array(POINTS_BASE, points)
    mem.store_array(CENTERS_BASE, centers)

    b = ProgramBuilder("kmeans")
    b.li("r10", POINTS_BASE)        # current point feature base
    b.li("r13", ASSIGN_BASE)        # assignment output cursor
    b.li("r22", NUM_FEATURES)
    with b.countdown("km_point", "r1", num_points):
        b.fli("f2", 1e18)           # best distance so far
        b.li("r6", 0)               # best cluster
        b.li("r2", 0)               # cluster index
        b.li("r11", CENTERS_BASE)   # current center feature base
        b.label("km_cluster")
        b.fli("f1", 0.0)            # accumulated squared distance
        b.mov("r4", "r10")
        b.mov("r5", "r11")
        with b.for_up("km_feature", "r3", "r22"):
            b.flw("f3", "r4", 0)
            b.flw("f4", "r5", 0)
            b.fsub("f3", "f3", "f4")
            b.fmul("f3", "f3", "f3")
            b.fadd("f1", "f1", "f3")
            b.addi("r4", "r4", WORD_SIZE)
            b.addi("r5", "r5", WORD_SIZE)
        b.fslt("r7", "f1", "f2")
        b.beq("r7", "r0", "km_keep")
        b.fmov("f2", "f1")
        b.mov("r6", "r2")
        b.label("km_keep")
        b.addi("r11", "r11", NUM_FEATURES * WORD_SIZE)
        b.addi("r2", "r2", 1)
        b.slti("r8", "r2", NUM_CLUSTERS)
        b.bne("r8", "r0", "km_cluster")
        b.sw("r13", "r6", 0)
        b.addi("r13", "r13", WORD_SIZE)
        b.addi("r10", "r10", NUM_FEATURES * WORD_SIZE)
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> list[int]:
    """Pure-Python reference assignment, for validating the kernel."""
    num_points = problem_size(scale)
    points = data.floats(num_points * NUM_FEATURES, -10.0, 10.0, seed=11)
    centers = data.floats(NUM_CLUSTERS * NUM_FEATURES, -10.0, 10.0, seed=12)
    out = []
    for i in range(num_points):
        best, best_dist = 0, float("inf")
        for k in range(NUM_CLUSTERS):
            dist = sum(
                (points[i * NUM_FEATURES + f] - centers[k * NUM_FEATURES + f]) ** 2
                for f in range(NUM_FEATURES)
            )
            if dist < best_dist:
                best, best_dist = k, dist
        out.append(best)
    return out
