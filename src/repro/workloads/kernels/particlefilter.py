"""PTF — Particle Filter (Rodinia ``particleFilter``).

Statistical estimator of a target location given noisy measurements: per
frame, every particle is propagated with pre-generated noise, weighted by a
Gaussian-like likelihood of the observation, and the weights are normalized;
the frame estimate is the weighted mean.  FP-heavy per-particle loops with a
few divides per frame, matching the two hot traces the paper maps for PTF.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

PART_X_BASE = 0x1_0000
WEIGHT_BASE = 0x2_1000
NOISE_BASE = 0x3_2000
OBS_BASE = 0x4_3000
EST_BASE = 0x5_4000

NUM_FRAMES = 8

META = {
    "abbrev": "PTF",
    "name": "Particle Filter",
    "domain": "Medical Imaging",
    "kernel": "particleFilter",
    "description": "Statistical estimator of the location of a target object given noisy measurements",
}


def problem_size(scale: float) -> int:
    return max(8, int(420 * scale))


def _dataset(num_particles: int):
    particles = data.floats(num_particles, -1.0, 1.0, seed=91)
    noise = data.floats(num_particles * NUM_FRAMES, -0.2, 0.2, seed=92)
    observations = [0.5 * frame + 0.3 for frame in range(NUM_FRAMES)]
    return particles, noise, observations


def build(scale: float = 1.0) -> tuple:
    num_particles = problem_size(scale)
    particles, noise, observations = _dataset(num_particles)

    mem = Memory()
    mem.store_array(PART_X_BASE, particles)
    mem.store_array(NOISE_BASE, noise)
    mem.store_array(OBS_BASE, observations)

    b = ProgramBuilder("particlefilter")
    b.li("r25", NOISE_BASE)             # noise cursor (advances across frames)
    b.li("r26", OBS_BASE)
    b.li("r27", EST_BASE)
    b.li("r24", num_particles)
    b.fli("f15", 1.0)
    with b.countdown("ptf_frame", "r30", NUM_FRAMES):
        b.flw("f10", "r26", 0)          # observation for this frame
        # Propagate particles and compute unnormalized weights.
        b.li("r10", PART_X_BASE)
        b.li("r11", WEIGHT_BASE)
        b.fli("f5", 0.0)                # weight sum
        with b.countdown("ptf_move", "r1", num_particles):
            b.flw("f1", "r10", 0)       # x
            b.flw("f2", "r25", 0)       # noise sample
            b.fadd("f1", "f1", "f2")
            b.fsw("r10", "f1", 0)       # x += noise
            b.fsub("f3", "f1", "f10")   # error vs observation
            b.fmul("f3", "f3", "f3")
            b.fadd("f4", "f3", "f15")
            b.fdiv("f4", "f15", "f4")   # likelihood = 1 / (1 + err^2)
            b.fsw("r11", "f4", 0)
            b.fadd("f5", "f5", "f4")
            b.addi("r10", "r10", WORD_SIZE)
            b.addi("r11", "r11", WORD_SIZE)
            b.addi("r25", "r25", WORD_SIZE)
        # Normalize weights and accumulate the weighted-mean estimate.
        b.li("r10", PART_X_BASE)
        b.li("r11", WEIGHT_BASE)
        b.fli("f6", 0.0)                # estimate accumulator
        with b.countdown("ptf_norm", "r1", num_particles):
            b.flw("f4", "r11", 0)
            b.fdiv("f4", "f4", "f5")
            b.fsw("r11", "f4", 0)
            b.flw("f1", "r10", 0)
            b.fmul("f7", "f1", "f4")
            b.fadd("f6", "f6", "f7")
            b.addi("r10", "r10", WORD_SIZE)
            b.addi("r11", "r11", WORD_SIZE)
        b.fsw("r27", "f6", 0)           # frame estimate
        b.addi("r27", "r27", WORD_SIZE)
        b.addi("r26", "r26", WORD_SIZE)
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> list[float]:
    """Per-frame weighted-mean estimates computed in Python."""
    num_particles = problem_size(scale)
    particles, noise, observations = _dataset(num_particles)
    xs = list(particles)
    estimates = []
    cursor = 0
    for frame in range(NUM_FRAMES):
        obs = observations[frame]
        weights = []
        for i in range(num_particles):
            xs[i] += noise[cursor]
            cursor += 1
            err = xs[i] - obs
            weights.append(1.0 / (1.0 + err * err))
        total = sum(weights)
        estimates.append(sum(x * (w / total) for x, w in zip(xs, weights)))
    return estimates
