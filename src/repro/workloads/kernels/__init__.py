"""Kernel analogs of the eleven Rodinia benchmarks (paper Table 3)."""
