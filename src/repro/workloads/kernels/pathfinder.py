"""PF — PathFinder (Rodinia ``run``).

Dynamic programming over a 2-D grid, row by row: each destination cell takes
the minimum of its three upstream neighbors plus its own weight.  Integer
min-chains with regular loops; boundary columns handled outside the hot loop
so the inner-loop trace stays uniform.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

WALL_BASE = 0x1_0000
SRC_BASE = 0x6_1000
DST_BASE = 0x7_2000

META = {
    "abbrev": "PF",
    "name": "PathFinder",
    "domain": "Grid Traversal",
    "kernel": "run",
    "description": "Shortest path finder on a 2-D grid using dynamic programming",
}


def problem_size(scale: float) -> tuple[int, int]:
    cols = max(8, int(110 * (scale ** 0.5)))
    rows = max(3, int(42 * (scale ** 0.5)))
    return rows, cols


def final_base(scale: float = 1.0) -> int:
    """Buffer holding the final DP row (depends on the swap parity)."""
    rows, _ = problem_size(scale)
    return DST_BASE if (rows - 1) % 2 else SRC_BASE


def build(scale: float = 1.0) -> tuple:
    rows, cols = problem_size(scale)
    wall = data.ints(rows * cols, 0, 9, seed=81)

    mem = Memory()
    mem.store_array(WALL_BASE, wall)
    mem.store_array(SRC_BASE, wall[:cols])  # row 0 seeds the DP

    row_bytes = cols * WORD_SIZE
    b = ProgramBuilder("pathfinder")
    b.li("r26", SRC_BASE)
    b.li("r27", DST_BASE)
    b.li("r24", cols - 1)
    b.li("r25", WALL_BASE + row_bytes)  # wall row pointer (row 1 onward)
    with b.countdown("pf_row", "r30", rows - 1):
        # Left boundary: dst[0] = wall[0] + min(src[0], src[1]).
        b.lw("r1", "r26", 0)
        b.lw("r2", "r26", WORD_SIZE)
        b.min_("r1", "r1", "r2")
        b.lw("r3", "r25", 0)
        b.add("r3", "r3", "r1")
        b.sw("r27", "r3", 0)
        # Interior columns.
        b.mov("r4", "r26")              # src pointer (col j-1 under cursor)
        b.addi("r5", "r27", WORD_SIZE)  # dst pointer at col 1
        b.addi("r6", "r25", WORD_SIZE)  # wall pointer at col 1
        b.li("r2", 1)
        b.label("pf_col")
        b.lw("r7", "r4", 0)             # src[j-1]
        b.lw("r8", "r4", WORD_SIZE)     # src[j]
        b.lw("r9", "r4", 2 * WORD_SIZE) # src[j+1]
        b.min_("r7", "r7", "r8")
        b.min_("r7", "r7", "r9")
        b.lw("r10", "r6", 0)
        b.add("r10", "r10", "r7")
        b.sw("r5", "r10", 0)
        b.addi("r4", "r4", WORD_SIZE)
        b.addi("r5", "r5", WORD_SIZE)
        b.addi("r6", "r6", WORD_SIZE)
        b.addi("r2", "r2", 1)
        b.blt("r2", "r24", "pf_col")
        # Right boundary: dst[C-1] = wall[C-1] + min(src[C-2], src[C-1]).
        b.lw("r7", "r4", 0)
        b.lw("r8", "r4", WORD_SIZE)
        b.min_("r7", "r7", "r8")
        b.lw("r10", "r6", 0)
        b.add("r10", "r10", "r7")
        b.sw("r5", "r10", 0)
        # Advance wall row; swap src/dst.
        b.addi("r25", "r25", row_bytes)
        b.mov("r9", "r26")
        b.mov("r26", "r27")
        b.mov("r27", "r9")
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> list[int]:
    """Final DP row computed in Python."""
    rows, cols = problem_size(scale)
    wall = data.ints(rows * cols, 0, 9, seed=81)
    src = wall[:cols]
    for r in range(1, rows):
        dst = [0] * cols
        for c in range(cols):
            best = src[c]
            if c > 0:
                best = min(best, src[c - 1])
            if c < cols - 1:
                best = min(best, src[c + 1])
            dst[c] = wall[r * cols + c] + best
        src = dst
    return src
