"""SRAD — Speckle Reducing Anisotropic Diffusion (Rodinia ``main``).

PDE-based diffusion for ultrasound/radar images.  Each iteration computes a
diffusion coefficient per interior cell from local gradients (with divides),
then updates the image from the coefficient field.  FP-divide and
memory heavy — the other kernel (with NW) that regresses without memory
speculation in the paper's Figure 8.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

IMAGE_BASE = 0x1_0000
COEFF_BASE = 0x2_1000

LAMBDA = 0.25
NUM_STEPS = 6

META = {
    "abbrev": "SRAD",
    "name": "SRAD",
    "domain": "Image Processing",
    "kernel": "main",
    "description": "Diffusion method for ultrasonic and radar imaging applications based on PDEs",
}


def problem_size(scale: float) -> int:
    return max(6, int(20 * (scale ** 0.5)))


def build(scale: float = 1.0) -> tuple:
    n = problem_size(scale)
    image = data.floats(n * n, 1.0, 10.0, seed=101)

    mem = Memory()
    mem.store_array(IMAGE_BASE, image)
    mem.store_array(COEFF_BASE, [0.0] * (n * n))

    row_bytes = n * WORD_SIZE
    b = ProgramBuilder("srad")
    b.li("r24", n - 1)
    b.fli("f14", 1.0)
    b.fli("f15", LAMBDA)
    with b.countdown("sr_step", "r30", NUM_STEPS):
        # Pass 1: diffusion coefficient per interior cell.
        b.li("r1", 1)
        b.label("sr_crow")
        b.muli("r3", "r1", row_bytes)
        b.addi("r3", "r3", WORD_SIZE)
        b.li("r4", IMAGE_BASE)
        b.add("r4", "r4", "r3")         # image cell pointer
        b.li("r5", COEFF_BASE)
        b.add("r5", "r5", "r3")         # coeff cell pointer
        b.li("r2", 1)
        b.label("sr_ccol")
        b.flw("f1", "r4", 0)            # J (center)
        b.flw("f2", "r4", -row_bytes)   # north
        b.flw("f3", "r4", row_bytes)    # south
        b.flw("f4", "r4", -WORD_SIZE)   # west
        b.flw("f5", "r4", WORD_SIZE)    # east
        b.fsub("f2", "f2", "f1")        # dN
        b.fsub("f3", "f3", "f1")        # dS
        b.fsub("f4", "f4", "f1")        # dW
        b.fsub("f5", "f5", "f1")        # dE
        b.fmul("f6", "f2", "f2")
        b.fmul("f7", "f3", "f3")
        b.fadd("f6", "f6", "f7")
        b.fmul("f7", "f4", "f4")
        b.fadd("f6", "f6", "f7")
        b.fmul("f7", "f5", "f5")
        b.fadd("f6", "f6", "f7")        # G2 numerator
        b.fmul("f8", "f1", "f1")        # J^2
        b.fdiv("f6", "f6", "f8")        # normalized gradient magnitude
        b.fadd("f9", "f14", "f6")
        b.fdiv("f9", "f14", "f9")       # c = 1 / (1 + G2/J^2)
        b.fsw("r5", "f9", 0)
        b.addi("r4", "r4", WORD_SIZE)
        b.addi("r5", "r5", WORD_SIZE)
        b.addi("r2", "r2", 1)
        b.blt("r2", "r24", "sr_ccol")
        b.addi("r1", "r1", 1)
        b.blt("r1", "r24", "sr_crow")
        # Pass 2: divergence update of the image using the coefficients.
        b.li("r1", 1)
        b.label("sr_urow")
        b.muli("r3", "r1", row_bytes)
        b.addi("r3", "r3", WORD_SIZE)
        b.li("r4", IMAGE_BASE)
        b.add("r4", "r4", "r3")
        b.li("r5", COEFF_BASE)
        b.add("r5", "r5", "r3")
        b.li("r2", 1)
        b.label("sr_ucol")
        b.flw("f1", "r4", 0)
        b.flw("f2", "r4", -row_bytes)
        b.flw("f3", "r4", row_bytes)
        b.flw("f4", "r4", -WORD_SIZE)
        b.flw("f5", "r4", WORD_SIZE)
        b.flw("f9", "r5", 0)            # c at this cell
        b.fadd("f6", "f2", "f3")
        b.fadd("f6", "f6", "f4")
        b.fadd("f6", "f6", "f5")
        b.fadd("f7", "f1", "f1")
        b.fadd("f7", "f7", "f7")
        b.fsub("f6", "f6", "f7")        # laplacian
        b.fmul("f6", "f6", "f9")
        b.fmul("f6", "f6", "f15")
        b.fadd("f1", "f1", "f6")
        b.fsw("r4", "f1", 0)
        b.addi("r4", "r4", WORD_SIZE)
        b.addi("r5", "r5", WORD_SIZE)
        b.addi("r2", "r2", 1)
        b.blt("r2", "r24", "sr_ucol")
        b.addi("r1", "r1", 1)
        b.blt("r1", "r24", "sr_urow")
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> list[float]:
    """Final image after NUM_STEPS diffusion steps, in Python.

    Pass 2 updates the image *in place* in row-major order (as the kernel
    does), so the north/west neighbors it reads are already updated values.
    """
    n = problem_size(scale)
    image = data.floats(n * n, 1.0, 10.0, seed=101)
    coeff = [0.0] * (n * n)
    for _ in range(NUM_STEPS):
        for r in range(1, n - 1):
            for c in range(1, n - 1):
                i = r * n + c
                center = image[i]
                d_n = image[i - n] - center
                d_s = image[i + n] - center
                d_w = image[i - 1] - center
                d_e = image[i + 1] - center
                g2 = (d_n ** 2 + d_s ** 2 + d_w ** 2 + d_e ** 2) / (center * center)
                coeff[i] = 1.0 / (1.0 + g2)
        for r in range(1, n - 1):
            for c in range(1, n - 1):
                i = r * n + c
                lap = image[i - n] + image[i + n] + image[i - 1] + image[i + 1] - 4 * image[i]
                image[i] += lap * coeff[i] * LAMBDA  # matches the kernel's fmul order
    return image
