"""NW — Needleman-Wunsch sequence alignment (Rodinia ``runTest``).

Dynamic-programming fill of the alignment score matrix:
``score[i][j] = max(diag + sim, up - penalty, left - penalty)``.
Deliberately memory-heavy — the left neighbor is re-loaded from memory one
iteration after it was stored, creating the short-distance store-to-load
dependences that make NW regress *without* memory speculation in the
paper's Figure 8.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

SCORE_BASE = 0x1_0000
SIM_BASE = 0x8_1000

PENALTY = 10

META = {
    "abbrev": "NW",
    "name": "Needleman-Wunsch",
    "domain": "Bioinformatics",
    "kernel": "runTest",
    "description": "Nonlinear global optimization method for DNA sequence alignments",
}


def problem_size(scale: float) -> int:
    return max(4, int(64 * (scale ** 0.5)))


def _similarity(n: int) -> list[int]:
    return data.ints((n + 1) * (n + 1), -6, 6, seed=71)


def build(scale: float = 1.0) -> tuple:
    n = problem_size(scale)
    dim = n + 1
    mem = Memory()
    mem.store_array(SIM_BASE, _similarity(n))
    # First row/column of the score matrix: gap penalties.
    mem.store_array(SCORE_BASE, [-PENALTY * j for j in range(dim)])
    for i in range(1, dim):
        mem.store(SCORE_BASE + i * dim * WORD_SIZE, -PENALTY * i)

    row_bytes = dim * WORD_SIZE
    b = ProgramBuilder("nw")
    b.li("r28", dim)
    b.li("r1", 1)                       # i
    b.label("nw_row")
    b.muli("r3", "r1", row_bytes)
    b.li("r4", SCORE_BASE)
    b.add("r4", "r4", "r3")
    b.addi("r4", "r4", WORD_SIZE)       # &score[i][1]
    b.li("r5", SIM_BASE)
    b.add("r5", "r5", "r3")
    b.addi("r5", "r5", WORD_SIZE)       # &sim[i][1]
    b.li("r2", 1)                       # j
    b.label("nw_col")
    b.lw("r6", "r4", -row_bytes - WORD_SIZE)  # diag
    b.lw("r7", "r4", -row_bytes)              # up
    b.lw("r8", "r4", -WORD_SIZE)              # left (stored last iteration)
    b.lw("r9", "r5", 0)                       # similarity score
    b.add("r10", "r6", "r9")
    b.subi("r11", "r7", PENALTY)
    b.subi("r12", "r8", PENALTY)
    b.max_("r13", "r10", "r11")
    b.max_("r13", "r13", "r12")
    b.sw("r4", "r13", 0)
    b.addi("r4", "r4", WORD_SIZE)
    b.addi("r5", "r5", WORD_SIZE)
    b.addi("r2", "r2", 1)
    b.blt("r2", "r28", "nw_col")
    b.addi("r1", "r1", 1)
    b.blt("r1", "r28", "nw_row")
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> list[int]:
    """Full score matrix (flattened, dim x dim) computed in Python."""
    n = problem_size(scale)
    dim = n + 1
    sim = _similarity(n)
    score = [0] * (dim * dim)
    for j in range(dim):
        score[j] = -PENALTY * j
    for i in range(1, dim):
        score[i * dim] = -PENALTY * i
    for i in range(1, dim):
        for j in range(1, dim):
            diag = score[(i - 1) * dim + (j - 1)] + sim[i * dim + j]
            up = score[(i - 1) * dim + j] - PENALTY
            left = score[i * dim + (j - 1)] - PENALTY
            score[i * dim + j] = max(diag, up, left)
    return score
