"""KNN — K-Nearest Neighbors (Rodinia ``nn``, kernel ``main``).

Computes the Euclidean distance from every record (latitude, longitude) to a
query point, stores all distances, and tracks the running nearest record.
The distance loop is tight FP work; the min-update branch is data dependent
but becomes strongly biased as the running minimum settles.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

LAT_BASE = 0x1_0000
LNG_BASE = 0x2_1000
DIST_BASE = 0x3_2000
RESULT_BASE = 0x4_3000

QUERY_LAT = 30.0
QUERY_LNG = -90.0

META = {
    "abbrev": "KNN",
    "name": "K-Nearest Neighbors",
    "domain": "Data Mining",
    "kernel": "main",
    "description": "Finding the k-nearest neighbors from an unstructured data set",
}


def problem_size(scale: float) -> int:
    return max(8, int(3200 * scale))


def build(scale: float = 1.0) -> tuple:
    num_records = problem_size(scale)
    lats = data.floats(num_records, 0.0, 60.0, seed=21)
    lngs = data.floats(num_records, -180.0, 0.0, seed=22)

    mem = Memory()
    mem.store_array(LAT_BASE, lats)
    mem.store_array(LNG_BASE, lngs)

    b = ProgramBuilder("knn")
    b.li("r10", LAT_BASE)
    b.li("r11", LNG_BASE)
    b.li("r12", DIST_BASE)
    b.fli("f10", QUERY_LAT)
    b.fli("f11", QUERY_LNG)
    b.fli("f12", 1e18)          # best distance
    b.li("r5", 0)               # best index
    b.li("r6", 0)               # current index
    with b.countdown("knn_rec", "r1", num_records):
        b.flw("f1", "r10", 0)
        b.flw("f2", "r11", 0)
        b.fsub("f1", "f1", "f10")
        b.fmul("f1", "f1", "f1")
        b.fsub("f2", "f2", "f11")
        b.fmul("f2", "f2", "f2")
        b.fadd("f3", "f1", "f2")
        b.fsw("r12", "f3", 0)
        # Branchless argmin (a compiler would emit cmov here): keeps the
        # hot loop at one branch per iteration, so trace anchors stay
        # aligned to iteration boundaries.
        b.fslt("r7", "f3", "f12")   # 1 if this record is closer
        b.fmin("f12", "f12", "f3")
        b.sub("r8", "r6", "r5")
        b.mul("r9", "r7", "r8")
        b.add("r5", "r5", "r9")     # r5 = r7 ? r6 : r5
        b.addi("r10", "r10", WORD_SIZE)
        b.addi("r11", "r11", WORD_SIZE)
        b.addi("r12", "r12", WORD_SIZE)
        b.addi("r6", "r6", 1)
    b.li("r20", RESULT_BASE)
    b.sw("r20", "r5", 0)
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> int:
    """Index of the nearest record, computed in Python."""
    num_records = problem_size(scale)
    lats = data.floats(num_records, 0.0, 60.0, seed=21)
    lngs = data.floats(num_records, -180.0, 0.0, seed=22)
    best, best_dist = 0, float("inf")
    for i in range(num_records):
        dist = (lats[i] - QUERY_LAT) ** 2 + (lngs[i] - QUERY_LNG) ** 2
        if dist < best_dist:
            best, best_dist = i, dist
    return best
