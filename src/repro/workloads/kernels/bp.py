"""BP — Back Propagation (Rodinia ``bpnn_train_kernel``).

Trains one hidden layer of a small feed-forward network: forward pass with a
fast-sigmoid activation (x / (1 + |x|)), output error, and a gradient update
of both weight matrices.  Dense dot-product loops — the quintessential
long-lived fabric configuration (Table 5 shows BP at 6505 invocations per
configuration).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

INPUT_BASE = 0x1_0000
W1_BASE = 0x2_1000      # input -> hidden weights (hidden-major rows)
HIDDEN_BASE = 0x3_2000
W2_BASE = 0x4_3000      # hidden -> output weights (output-major rows)
OUTPUT_BASE = 0x5_4000
TARGET_BASE = 0x6_5000
DELTA_BASE = 0x7_6000   # output-layer error terms

NUM_INPUT = 48    # long inner loops (as in Rodinia's layer sizes) keep the
NUM_HIDDEN = 12   # dot-product trace dominant; trips divisible by 3 keep
NUM_OUTPUT = 6    # anchors aligned to iteration boundaries
ETA = 0.05

META = {
    "abbrev": "BP",
    "name": "Back Propagation",
    "domain": "Pattern Recognition",
    "kernel": "bpnn_train_kernel",
    "description": "Machine learning algorithm to train the weights of nodes of a layered neural network",
}


def problem_size(scale: float) -> int:
    return max(1, round(8 * scale))  # training epochs


def _dataset():
    inputs = data.floats(NUM_INPUT, -1.0, 1.0, seed=111)
    w1 = data.floats(NUM_HIDDEN * NUM_INPUT, -0.5, 0.5, seed=112)
    w2 = data.floats(NUM_OUTPUT * NUM_HIDDEN, -0.5, 0.5, seed=113)
    targets = data.floats(NUM_OUTPUT, 0.0, 1.0, seed=114)
    return inputs, w1, w2, targets


def build(scale: float = 1.0) -> tuple:
    epochs = problem_size(scale)
    inputs, w1, w2, targets = _dataset()

    mem = Memory()
    mem.store_array(INPUT_BASE, inputs)
    mem.store_array(W1_BASE, w1)
    mem.store_array(W2_BASE, w2)
    mem.store_array(TARGET_BASE, targets)

    b = ProgramBuilder("backprop")
    b.li("r20", NUM_INPUT)
    b.li("r21", NUM_HIDDEN)
    b.li("r22", NUM_OUTPUT)
    b.fli("f14", 1.0)
    b.fli("f15", ETA)
    with b.countdown("bp_epoch", "r30", epochs):
        # Forward: hidden[j] = fastsig(sum_i input[i] * w1[j][i]).
        b.li("r10", W1_BASE)            # weight row cursor
        b.li("r11", HIDDEN_BASE)
        with b.for_up("bp_fh", "r1", "r21"):
            b.fli("f1", 0.0)
            b.li("r12", INPUT_BASE)
            with b.for_up("bp_fhi", "r2", "r20"):
                b.flw("f2", "r12", 0)
                b.flw("f3", "r10", 0)
                b.fmul("f4", "f2", "f3")
                b.fadd("f1", "f1", "f4")
                b.addi("r12", "r12", WORD_SIZE)
                b.addi("r10", "r10", WORD_SIZE)
            b.fabs("f5", "f1")
            b.fadd("f5", "f5", "f14")
            b.fdiv("f6", "f1", "f5")    # fast sigmoid
            b.fsw("r11", "f6", 0)
            b.addi("r11", "r11", WORD_SIZE)
        # Forward: output[k] = fastsig(sum_j hidden[j] * w2[k][j]); delta.
        b.li("r10", W2_BASE)
        b.li("r11", OUTPUT_BASE)
        b.li("r13", TARGET_BASE)
        b.li("r14", DELTA_BASE)
        with b.for_up("bp_fo", "r1", "r22"):
            b.fli("f1", 0.0)
            b.li("r12", HIDDEN_BASE)
            with b.for_up("bp_foj", "r2", "r21"):
                b.flw("f2", "r12", 0)
                b.flw("f3", "r10", 0)
                b.fmul("f4", "f2", "f3")
                b.fadd("f1", "f1", "f4")
                b.addi("r12", "r12", WORD_SIZE)
                b.addi("r10", "r10", WORD_SIZE)
            b.fabs("f5", "f1")
            b.fadd("f5", "f5", "f14")
            b.fdiv("f6", "f1", "f5")
            b.fsw("r11", "f6", 0)
            b.flw("f7", "r13", 0)       # target
            b.fsub("f8", "f7", "f6")    # delta = target - output
            b.fsw("r14", "f8", 0)
            b.addi("r11", "r11", WORD_SIZE)
            b.addi("r13", "r13", WORD_SIZE)
            b.addi("r14", "r14", WORD_SIZE)
        # Backward: w2[k][j] += eta * delta[k] * hidden[j].
        b.li("r10", W2_BASE)
        b.li("r14", DELTA_BASE)
        with b.for_up("bp_bo", "r1", "r22"):
            b.flw("f8", "r14", 0)
            b.fmul("f9", "f8", "f15")   # eta * delta
            b.li("r12", HIDDEN_BASE)
            with b.for_up("bp_boj", "r2", "r21"):
                b.flw("f2", "r12", 0)
                b.flw("f3", "r10", 0)
                b.fmul("f4", "f9", "f2")
                b.fadd("f3", "f3", "f4")
                b.fsw("r10", "f3", 0)
                b.addi("r12", "r12", WORD_SIZE)
                b.addi("r10", "r10", WORD_SIZE)
            b.addi("r14", "r14", WORD_SIZE)
        # Backward: w1[j][i] += eta * hidden_err[j] * input[i], with the
        # hidden error approximated by the mean output delta (keeps the
        # kernel's memory/compute shape without a full transpose pass).
        b.fli("f10", 0.0)
        b.li("r14", DELTA_BASE)
        with b.for_up("bp_sum", "r1", "r22"):
            b.flw("f8", "r14", 0)
            b.fadd("f10", "f10", "f8")
            b.addi("r14", "r14", WORD_SIZE)
        b.cvtif("f11", "r22")
        b.fdiv("f10", "f10", "f11")     # mean delta
        b.fmul("f9", "f10", "f15")      # eta * mean delta
        b.li("r10", W1_BASE)
        with b.for_up("bp_bh", "r1", "r21"):
            b.li("r12", INPUT_BASE)
            with b.for_up("bp_bhi", "r2", "r20"):
                b.flw("f2", "r12", 0)
                b.flw("f3", "r10", 0)
                b.fmul("f4", "f9", "f2")
                b.fadd("f3", "f3", "f4")
                b.fsw("r10", "f3", 0)
                b.addi("r12", "r12", WORD_SIZE)
                b.addi("r10", "r10", WORD_SIZE)
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> list[float]:
    """Final output activations after training, computed in Python."""
    epochs = problem_size(scale)
    inputs, w1, w2, targets = _dataset()
    w1 = list(w1)
    w2 = list(w2)
    hidden = [0.0] * NUM_HIDDEN
    outputs = [0.0] * NUM_OUTPUT
    for _ in range(epochs):
        for j in range(NUM_HIDDEN):
            acc = 0.0
            for i in range(NUM_INPUT):
                acc += inputs[i] * w1[j * NUM_INPUT + i]
            hidden[j] = acc / (abs(acc) + 1.0)
        deltas = [0.0] * NUM_OUTPUT
        for k in range(NUM_OUTPUT):
            acc = 0.0
            for j in range(NUM_HIDDEN):
                acc += hidden[j] * w2[k * NUM_HIDDEN + j]
            outputs[k] = acc / (abs(acc) + 1.0)
            deltas[k] = targets[k] - outputs[k]
        for k in range(NUM_OUTPUT):
            scale_k = deltas[k] * ETA
            for j in range(NUM_HIDDEN):
                w2[k * NUM_HIDDEN + j] += scale_k * hidden[j]
        mean_delta = sum_in_order(deltas) / float(NUM_OUTPUT)
        eta_delta = mean_delta * ETA
        for j in range(NUM_HIDDEN):
            for i in range(NUM_INPUT):
                w1[j * NUM_INPUT + i] += eta_delta * inputs[i]
    return outputs


def sum_in_order(values: list[float]) -> float:
    """Left-to-right float sum (matches the kernel's accumulation order)."""
    acc = 0.0
    for value in values:
        acc += value
    return acc
