"""HS — Hotspot thermal simulation (Rodinia ``compute_tran_temp``).

Iterative five-point stencil over a temperature grid with a power input
term, double buffered.  Regular FP-heavy inner loops with highly biased
branches: the classic spatial-fabric-friendly kernel.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

TEMP_A_BASE = 0x1_0000
TEMP_B_BASE = 0x2_1000
POWER_BASE = 0x3_2000

DIFFUSION = 0.12
POWER_COEFF = 0.3
NUM_STEPS = 5

# Buffer holding the final temperatures (B after an odd number of steps).
FINAL_BASE = TEMP_B_BASE if NUM_STEPS % 2 else TEMP_A_BASE

META = {
    "abbrev": "HS",
    "name": "Hotspot",
    "domain": "Physics Simulation",
    "kernel": "compute_tran_temp",
    "description": "Estimate processor temperature based on power simulation",
}


def problem_size(scale: float) -> int:
    return max(6, int(26 * (scale ** 0.5)))


def build(scale: float = 1.0) -> tuple:
    n = problem_size(scale)
    temps = data.floats(n * n, 40.0, 80.0, seed=51)
    power = data.floats(n * n, 0.0, 2.0, seed=52)

    mem = Memory()
    mem.store_array(TEMP_A_BASE, temps)
    mem.store_array(TEMP_B_BASE, temps)  # boundary cells never rewritten
    mem.store_array(POWER_BASE, power)

    row_bytes = n * WORD_SIZE
    b = ProgramBuilder("hotspot")
    b.li("r26", TEMP_A_BASE)            # src buffer
    b.li("r27", TEMP_B_BASE)            # dst buffer
    b.li("r24", n - 1)                  # interior bound
    b.fli("f10", DIFFUSION)
    b.fli("f11", POWER_COEFF)
    with b.countdown("hs_step", "r30", NUM_STEPS):
        b.li("r1", 1)                   # row index
        b.label("hs_row")
        # Pointers to row r, column 1 in src, dst, and power arrays.
        b.muli("r3", "r1", row_bytes)
        b.addi("r3", "r3", WORD_SIZE)
        b.add("r4", "r26", "r3")        # src cell pointer
        b.add("r5", "r27", "r3")        # dst cell pointer
        b.li("r6", POWER_BASE)
        b.add("r6", "r6", "r3")         # power cell pointer
        b.li("r2", 1)                   # column index
        b.label("hs_col")
        b.flw("f1", "r4", 0)            # t
        b.flw("f2", "r4", -row_bytes)   # north
        b.flw("f3", "r4", row_bytes)    # south
        b.flw("f4", "r4", -WORD_SIZE)   # west
        b.flw("f5", "r4", WORD_SIZE)    # east
        b.fadd("f6", "f2", "f3")
        b.fadd("f6", "f6", "f4")
        b.fadd("f6", "f6", "f5")
        b.fadd("f7", "f1", "f1")
        b.fadd("f7", "f7", "f7")        # 4*t
        b.fsub("f6", "f6", "f7")        # laplacian
        b.fmul("f6", "f6", "f10")
        b.flw("f8", "r6", 0)
        b.fmul("f8", "f8", "f11")
        b.fadd("f9", "f1", "f6")
        b.fadd("f9", "f9", "f8")
        b.fsw("r5", "f9", 0)
        b.addi("r4", "r4", WORD_SIZE)
        b.addi("r5", "r5", WORD_SIZE)
        b.addi("r6", "r6", WORD_SIZE)
        b.addi("r2", "r2", 1)
        b.blt("r2", "r24", "hs_col")
        b.addi("r1", "r1", 1)
        b.blt("r1", "r24", "hs_row")
        # Swap src/dst buffers for the next step.
        b.mov("r9", "r26")
        b.mov("r26", "r27")
        b.mov("r27", "r9")
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> list[float]:
    """Final temperature grid (flattened) after NUM_STEPS, in Python."""
    n = problem_size(scale)
    src = data.floats(n * n, 40.0, 80.0, seed=51)
    power = data.floats(n * n, 0.0, 2.0, seed=52)
    dst = list(src)
    for _ in range(NUM_STEPS):
        for r in range(1, n - 1):
            for c in range(1, n - 1):
                i = r * n + c
                lap = src[i - n] + src[i + n] + src[i - 1] + src[i + 1] - 4 * src[i]
                dst[i] = src[i] + DIFFUSION * lap + POWER_COEFF * power[i]
        src, dst = dst, src
    return src
