"""BFS — Breadth-First Search (Rodinia ``BFSGraph``).

Queue-based BFS over a random CSR graph, repeated from several source nodes.
The visited-check branch is data dependent and unbiased, which is why BFS
shows many short-lived configurations in the paper's Table 5 (6.4 invocations
per configuration with one fabric).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import Memory
from repro.isa.instructions import WORD_SIZE
from repro.workloads import data

OFFSETS_BASE = 0x1_0000
EDGES_BASE = 0x2_1000
VISITED_BASE = 0x4_2000
COST_BASE = 0x5_3000
QUEUE_BASE = 0x6_4000
SOURCES_BASE = 0x7_5000

AVG_DEGREE = 4
NUM_SOURCES = 3

META = {
    "abbrev": "BFS",
    "name": "Breadth-First Search",
    "domain": "Graph Algorithms",
    "kernel": "BFSGraph",
    "description": "Breadth-first search on a graph",
}


def problem_size(scale: float) -> int:
    return max(16, int(220 * scale))


def build(scale: float = 1.0) -> tuple:
    num_nodes = problem_size(scale)
    offsets, edges = data.csr_graph(num_nodes, AVG_DEGREE, seed=31)
    sources = [0, num_nodes // 3, num_nodes // 2][:NUM_SOURCES]

    mem = Memory()
    mem.store_array(OFFSETS_BASE, offsets)
    mem.store_array(EDGES_BASE, edges)
    mem.store_array(SOURCES_BASE, sources)

    b = ProgramBuilder("bfs")
    b.li("r28", num_nodes)
    b.li("r29", SOURCES_BASE)
    with b.countdown("bfs_run", "r30", NUM_SOURCES):
        # Reset visited[] and cost[] for this source.
        b.li("r3", VISITED_BASE)
        b.li("r4", COST_BASE)
        with b.countdown("bfs_clear", "r2", num_nodes):
            b.sw("r3", "r0", 0)
            b.sw("r4", "r0", 0)
            b.addi("r3", "r3", WORD_SIZE)
            b.addi("r4", "r4", WORD_SIZE)
        # Seed the queue with the source node.
        b.lw("r5", "r29", 0)            # source id
        b.li("r6", QUEUE_BASE)
        b.sw("r6", "r5", 0)
        b.li("r7", 1)
        b.shl("r8", "r5", 2)
        b.li("r9", VISITED_BASE)
        b.add("r9", "r9", "r8")
        b.sw("r9", "r7", 0)             # visited[source] = 1
        b.li("r1", 0)                   # queue head
        b.li("r2", 1)                   # queue tail
        b.label("bfs_node")
        b.li("r3", QUEUE_BASE)
        b.shl("r4", "r1", 2)
        b.add("r3", "r3", "r4")
        b.lw("r5", "r3", 0)             # node = queue[head]
        b.shl("r7", "r5", 2)
        b.li("r6", OFFSETS_BASE)
        b.add("r6", "r6", "r7")
        b.lw("r8", "r6", 0)             # edge range start
        b.lw("r9", "r6", WORD_SIZE)     # edge range end
        b.li("r10", COST_BASE)
        b.add("r11", "r10", "r7")
        b.lw("r12", "r11", 0)           # cost[node]
        b.addi("r12", "r12", 1)         # neighbor cost
        b.bge("r8", "r9", "bfs_next_node")
        b.label("bfs_edge")
        b.li("r13", EDGES_BASE)
        b.shl("r14", "r8", 2)
        b.add("r13", "r13", "r14")
        b.lw("r15", "r13", 0)           # neighbor id
        b.shl("r17", "r15", 2)
        b.li("r16", VISITED_BASE)
        b.add("r18", "r16", "r17")
        b.lw("r19", "r18", 0)
        b.bne("r19", "r0", "bfs_skip")  # already visited? (unbiased)
        b.li("r20", 1)
        b.sw("r18", "r20", 0)           # visited[neighbor] = 1
        b.li("r21", COST_BASE)
        b.add("r22", "r21", "r17")
        b.sw("r22", "r12", 0)           # cost[neighbor] = cost[node] + 1
        b.li("r23", QUEUE_BASE)
        b.shl("r24", "r2", 2)
        b.add("r23", "r23", "r24")
        b.sw("r23", "r15", 0)           # queue[tail] = neighbor
        b.addi("r2", "r2", 1)
        b.label("bfs_skip")
        b.addi("r8", "r8", 1)
        b.blt("r8", "r9", "bfs_edge")
        b.label("bfs_next_node")
        b.addi("r1", "r1", 1)
        b.blt("r1", "r2", "bfs_node")
        b.addi("r29", "r29", WORD_SIZE)  # next source
    b.halt()
    return b.build(), mem


def reference(scale: float = 1.0) -> list[int]:
    """BFS costs from the *last* source, computed in Python."""
    num_nodes = problem_size(scale)
    offsets, edges = data.csr_graph(num_nodes, AVG_DEGREE, seed=31)
    source = [0, num_nodes // 3, num_nodes // 2][NUM_SOURCES - 1]
    cost = [0] * num_nodes
    visited = [False] * num_nodes
    visited[source] = True
    queue = [source]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        for e in range(offsets[node], offsets[node + 1]):
            nb = edges[e]
            if not visited[nb]:
                visited[nb] = True
                cost[nb] = cost[node] + 1
                queue.append(nb)
    return cost
