"""Rodinia-like workload suite.

Eleven kernel analogs of the Rodinia benchmarks the paper evaluates
(Table 3), written against the reproduction ISA.  Each kernel module
exposes ``build(scale)`` returning a linked ``Program`` and an initialized
``Memory`` image; ``repro.workloads.suite`` registers them all and caches
generated dynamic traces.
"""

from repro.workloads.suite import (
    ALL_ABBREVS,
    BENCHMARKS,
    Benchmark,
    generate_trace,
    get_benchmark,
)
from repro.workloads.characterize import characterize, WorkloadProfile

__all__ = [
    "ALL_ABBREVS",
    "BENCHMARKS",
    "Benchmark",
    "characterize",
    "generate_trace",
    "get_benchmark",
    "WorkloadProfile",
]
