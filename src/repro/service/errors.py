"""Typed service errors with stable wire codes.

Every error the HTTP layer can return maps to one exception class; the
``code`` travels in the JSON error body and the ``http_status`` picks
the response status line, so clients can switch on either.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class: an error with a wire code and an HTTP status."""

    code = "internal_error"
    http_status = 500

    def to_doc(self) -> dict:
        return {"error": {"code": self.code, "message": str(self)}}


class InvalidJob(ServiceError):
    """The job payload failed validation (unknown benchmark, bad scale...)."""

    code = "invalid_request"
    http_status = 400


class QueueFull(ServiceError):
    """Admission control rejected the job: too many open jobs.

    ``retry_after`` is the server's backoff hint in seconds; the HTTP
    layer surfaces it as a ``Retry-After`` header.
    """

    code = "queue_full"
    http_status = 429

    def __init__(self, message: str, retry_after: int = 1) -> None:
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


class Draining(ServiceError):
    """The server is shutting down and no longer admits jobs."""

    code = "draining"
    http_status = 503


class UnknownJob(ServiceError):
    """No such job id (never existed, or evicted from retention)."""

    code = "unknown_job"
    http_status = 404
