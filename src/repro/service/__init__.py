"""Simulation-as-a-service: an async HTTP job layer over the harness.

The service turns the PR-1 compute substrate (``repro.harness.runner``'s
layered caches and ``repro.harness.parallel``'s process fan-out) into a
long-lived server that many clients can share:

* ``jobs``      — the validated job request/record model,
* ``queue``     — bounded admission-controlled job queue (429 on overload),
* ``scheduler`` — batches queued jobs, single-flights duplicates, and
  executes them on a bounded worker pool,
* ``metrics``   — counters and a latency ring buffer (p50/p99),
* ``server``    — the asyncio HTTP/1.1 front end (stdlib only),
* ``client``    — a small blocking Python client.

Start one with ``python -m repro serve`` and talk to it with
``python -m repro submit`` or :class:`repro.service.client.ServiceClient`.
"""

from repro.service.errors import (
    Draining,
    InvalidJob,
    QueueFull,
    ServiceError,
    UnknownJob,
)
from repro.service.jobs import Job, JobRequest, JobState
from repro.service.queue import JobQueue
from repro.service.client import JobFailed, ServerBusy, ServiceClient
from repro.service.server import ServiceServer, ThreadedServer

__all__ = [
    "Draining",
    "InvalidJob",
    "Job",
    "JobFailed",
    "JobQueue",
    "JobRequest",
    "JobState",
    "QueueFull",
    "ServerBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ThreadedServer",
    "UnknownJob",
]
