"""Simulation-as-a-service: an async HTTP job layer over the harness.

The service turns the PR-1 compute substrate (``repro.harness.runner``'s
layered caches and ``repro.harness.parallel``'s process fan-out) into a
long-lived server that many clients can share:

* ``jobs``      — the validated job request/record model,
* ``queue``     — bounded admission-controlled job queue (429 on overload),
* ``scheduler`` — batches queued jobs, single-flights duplicates, and
  shards them across a worker pool,
* ``workers``   — the pool backends (forked processes by default; the
  content-addressed disk cache is the shared artifact store),
* ``metrics``   — counters, latency rings, and worker-pool gauges,
* ``server``    — the asyncio HTTP/1.1 front end (stdlib only),
* ``client``    — a small blocking Python client (backoff polling),
* ``router``    — consistent-hash dispatch across N serve replicas
  (``repro route``), with health checks and aggregated ``/metrics``,
* ``loadtest``  — the open-loop arrival-rate generator behind
  ``repro loadtest`` and the CI SLO gate.

Start one with ``python -m repro serve`` (or a fleet with
``python -m repro route --replicas N``) and talk to it with
``python -m repro submit`` or :class:`repro.service.client.ServiceClient`.
"""

from repro.service.errors import (
    Draining,
    InvalidJob,
    QueueFull,
    ServiceError,
    UnknownJob,
)
from repro.service.jobs import Job, JobRequest, JobState
from repro.service.queue import JobQueue
from repro.service.client import JobFailed, ServerBusy, ServiceClient
from repro.service.loadtest import run_loadtest
from repro.service.router import HashRing, ReplicaRouter, RouterServer
from repro.service.server import ServiceServer, ThreadedServer
from repro.service.workers import (
    ProcessWorkerPool,
    ThreadWorkerPool,
    WorkerPool,
    default_workers,
)

__all__ = [
    "Draining",
    "HashRing",
    "InvalidJob",
    "Job",
    "JobFailed",
    "JobQueue",
    "JobRequest",
    "JobState",
    "ProcessWorkerPool",
    "QueueFull",
    "ReplicaRouter",
    "RouterServer",
    "ServerBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ThreadWorkerPool",
    "ThreadedServer",
    "UnknownJob",
    "WorkerPool",
    "default_workers",
    "run_loadtest",
]
