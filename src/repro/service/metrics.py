"""Service counters and latency percentiles from a bounded ring buffer.

Latency samples live in a fixed-size ``deque`` — the service never keeps
an unbounded history — and percentiles use the nearest-rank method over
a sorted copy, which is exact for the ring's window.  Cache hit/miss
numbers are read straight from the harness layers (the run cache's
profiler counters and the disk cache's per-namespace stats) so the
service reports the same counters ``repro bench`` does.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque


class LatencyRing:
    """Fixed-capacity ring of latency samples with exact window percentiles."""

    def __init__(self, capacity: int = 2048) -> None:
        self._samples: deque[float] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self._samples)

    @staticmethod
    def _nearest_rank(ordered: list[float], pct: float) -> float:
        rank = math.ceil(pct / 100.0 * len(ordered))
        return ordered[max(0, min(len(ordered) - 1, rank - 1))]

    def summary(self) -> dict:
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": len(ordered),
            "p50": self._nearest_rank(ordered, 50),
            "p90": self._nearest_rank(ordered, 90),
            "p99": self._nearest_rank(ordered, 99),
            "max": ordered[-1],
        }


class ServiceMetrics:
    """Monotonic counters + latency ring; snapshots merge harness stats."""

    def __init__(self, latency_capacity: int = 2048) -> None:
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self.latency = LatencyRing(latency_capacity)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe_latency(self, seconds: float) -> None:
        self.latency.observe(seconds)

    def retry_after_hint(self, open_jobs: int, workers: int) -> int:
        """Seconds a rejected client should back off before retrying."""
        p50 = self.latency.summary()["p50"]
        if p50 <= 0:
            return 1
        backlog_rounds = max(1, open_jobs) / max(1, workers)
        return max(1, int(p50 * backlog_rounds + 0.5))

    @staticmethod
    def cache_stats() -> dict:
        import repro.harness.diskcache as diskcache
        from repro.harness.profiling import PROFILER

        return {
            "run_memory_hits": PROFILER.counters.get(
                "run_cache_memory_hits", 0),
            "runs_simulated": PROFILER.counters.get("runs_simulated", 0),
            "disk": diskcache.shared_stats(),
        }

    def snapshot(self, queue=None, scheduler=None) -> dict:
        with self._lock:
            counters = dict(self._counters)
        doc = {
            "uptime_seconds": time.time() - self.started_at,
            "jobs": {
                "submitted": counters.get("submitted", 0),
                "rejected": counters.get("rejected", 0),
                "completed": counters.get("completed", 0),
                "failed": counters.get("failed", 0),
                "coalesced": counters.get("coalesced", 0),
            },
            "latency_seconds": self.latency.summary(),
            "cache": self.cache_stats(),
        }
        if queue is not None:
            doc["queue"] = queue.stats()
        if scheduler is not None:
            doc["flights_in_flight"] = scheduler.in_flight()
        return doc
