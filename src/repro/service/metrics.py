"""Service counters and latency percentiles from a bounded ring buffer.

Latency samples live in a fixed-size ``deque`` — the service never keeps
an unbounded history — and percentiles use the nearest-rank method over
a sorted copy, which is exact for the ring's window.  Cache hit/miss
numbers are read straight from the harness layers (the run cache's
profiler counters and the disk cache's per-namespace stats) so the
service reports the same counters ``repro bench`` does.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque


class LatencyRing:
    """Fixed-capacity ring of latency samples with exact window percentiles."""

    def __init__(self, capacity: int = 2048) -> None:
        self._samples: deque[float] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self._samples)

    @staticmethod
    def _nearest_rank(ordered: list[float], pct: float) -> float:
        rank = math.ceil(pct / 100.0 * len(ordered))
        return ordered[max(0, min(len(ordered) - 1, rank - 1))]

    def summary(self) -> dict:
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": len(ordered),
            "p50": self._nearest_rank(ordered, 50),
            "p90": self._nearest_rank(ordered, 90),
            "p99": self._nearest_rank(ordered, 99),
            "max": ordered[-1],
        }


class LatencyHistogram:
    """Cumulative-bucket latency histogram (Prometheus exposition shape).

    Unlike the ring, the histogram never forgets: buckets are monotonic
    counters, which is what Prometheus ``rate()``/``histogram_quantile()``
    need across scrapes.
    """

    #: Upper bounds in seconds; ``None`` is the +Inf bucket.
    DEFAULT_BUCKETS = (
        0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
        10.0, 30.0, 60.0, 120.0, None,
    )

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS) -> None:
        if buckets[-1] is not None:
            buckets = tuple(buckets) + (None,)
        self.buckets = tuple(buckets)
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        with self._lock:
            self._sum += seconds
            self._count += 1
            for index, upper in enumerate(self.buckets):
                if upper is None or seconds <= upper:
                    self._counts[index] += 1
                    break

    def summary(self) -> dict:
        """Per-bucket (non-cumulative) counts; the renderer cumulates."""
        with self._lock:
            return {
                "buckets": [
                    [upper, count]
                    for upper, count in zip(self.buckets, self._counts)
                ],
                "sum": self._sum,
                "count": self._count,
            }


class ServiceMetrics:
    """Monotonic counters + latency ring; snapshots merge harness stats."""

    #: Cardinality guard for per-span histograms.  Span names are a
    #: small fixed taxonomy; anything past the cap (a bug, or a hostile
    #: caller) aggregates under ``other``.
    MAX_SPAN_FAMILIES = 64

    def __init__(self, latency_capacity: int = 2048) -> None:
        #: Epoch stamp, for display only.  Durations (uptime, latencies)
        #: come from the monotonic clock — ``time.time()`` deltas jump
        #: with NTP corrections.
        self.started_at = time.time()
        self.started_mono = time.monotonic()
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        # Invocation-weighted fabric-occupancy accumulators: ratios from
        # individual jobs cannot be averaged unweighted, so we keep
        # sum(ratio * invocations) and divide at snapshot time.
        self._fabric_invocations = 0
        self._fabric_placed_weight = 0.0
        self._fabric_fill_weight = 0.0
        self.latency = LatencyRing(latency_capacity)
        self.latency_histogram = LatencyHistogram()
        self.queue_wait = LatencyRing(latency_capacity)
        self._span_histograms: dict[str, LatencyHistogram] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe_latency(self, seconds: float) -> None:
        self.latency.observe(seconds)
        self.latency_histogram.observe(seconds)

    def observe_queue_wait(self, seconds: float) -> None:
        self.queue_wait.observe(seconds)

    def observe_span(self, name: str, seconds: float) -> None:
        """Feed one finished wall-clock span into its duration histogram
        (the family behind ``repro_span_duration_seconds``)."""
        with self._lock:
            histogram = self._span_histograms.get(name)
            if histogram is None:
                if len(self._span_histograms) >= self.MAX_SPAN_FAMILIES:
                    name = "other"
                histogram = self._span_histograms.setdefault(
                    name, LatencyHistogram()
                )
        histogram.observe(seconds)

    def span_listener(self):
        """A ``SpanTracer`` listener feeding :meth:`observe_span`."""

        def listener(record) -> None:
            self.observe_span(record.name, record.duration)

        return listener

    def observe_report(self, report) -> None:
        """Fold one completed job's run report into lifecycle totals.

        These are the simulated DynaSpAM numbers (mapped/offloaded traces,
        invocations, squashes split by cause) aggregated across every job
        the service has completed — the counters behind
        ``repro_lifecycle_events_total``.
        """
        if not isinstance(report, dict):
            return
        stats = report.get("stats", {})
        squashes = int(report.get("squashes", 0) or 0)
        memory = int(stats.get("memory_violations", 0) or 0)
        self.bump("lifecycle.traces_mapped",
                  int(report.get("mapped_traces", 0) or 0))
        self.bump("lifecycle.traces_offloaded",
                  int(report.get("offloaded_traces", 0) or 0))
        self.bump("lifecycle.fabric_invocations",
                  int(report.get("fabric_invocations", 0) or 0))
        self.bump("lifecycle.reconfigurations",
                  int(report.get("reconfigurations", 0) or 0))
        self.bump("lifecycle.instructions_offloaded",
                  int(stats.get("offloaded_instructions", 0) or 0))
        self.bump("lifecycle.squashes_memory", min(memory, squashes))
        self.bump("lifecycle.squashes_branch",
                  max(0, squashes - memory))
        # Engine-tier totals (simulator-internal, not modeled) — the
        # counters behind ``repro_engine_memo_total`` and
        # ``repro_engine_batched_invocations_total``.
        self.bump("engine.memo_hits",
                  int(stats.get("invocation_memo_hits", 0) or 0))
        self.bump("engine.memo_misses",
                  int(stats.get("invocation_memo_misses", 0) or 0))
        self.bump("engine.batched_invocations",
                  int(stats.get("batched_invocations", 0) or 0))
        # Terminal trace-fate totals (jobs submitted with decision records
        # enabled) — the counters behind ``repro_trace_fate_total``.  The
        # reason label is only populated for unmappable traces, where the
        # mapper's closed failure enum gives the breakdown.
        decisions = report.get("decisions") or {}
        fates = decisions.get("trace_fates") or {}
        unmappable_reasons = fates.get("unmappable_reasons") or {}
        for fate, count in (fates.get("counts") or {}).items():
            if fate == "unmappable" and unmappable_reasons:
                for reason, n in unmappable_reasons.items():
                    self.bump(f"fate.{fate}|{reason}", int(n or 0))
            else:
                self.bump(f"fate.{fate}|", int(count or 0))
        # Cycle-accounting bucket totals for the accelerated run — the
        # counters behind ``repro_cycle_bucket_cycles_total``.
        accounting = report.get("cycle_accounting") or {}
        dyna = accounting.get("dynaspam") or {}
        for name, cycles in (dyna.get("buckets") or {}).items():
            self.bump(f"bucket.{name}", int(cycles or 0))
        util = report.get("fabric_utilization") or {}
        invocations = int(util.get("total_invocations", 0) or 0)
        if invocations:
            with self._lock:
                self._fabric_invocations += invocations
                self._fabric_placed_weight += (
                    float(util.get("placed_pe_ratio", 0.0) or 0.0)
                    * invocations)
                self._fabric_fill_weight += (
                    float(util.get("stripe_fill", 0.0) or 0.0)
                    * invocations)

    def retry_after_hint(self, open_jobs: int, workers: int) -> int:
        """Seconds a rejected client should back off before retrying."""
        p50 = self.latency.summary()["p50"]
        if p50 <= 0:
            return 1
        backlog_rounds = max(1, open_jobs) / max(1, workers)
        return max(1, int(p50 * backlog_rounds + 0.5))

    @staticmethod
    def cache_stats() -> dict:
        import repro.harness.diskcache as diskcache
        from repro.harness.profiling import PROFILER

        return {
            "run_memory_hits": PROFILER.counters.get(
                "run_cache_memory_hits", 0),
            "runs_simulated": PROFILER.counters.get("runs_simulated", 0),
            "disk": diskcache.shared_stats(),
        }

    def snapshot(self, queue=None, scheduler=None) -> dict:
        with self._lock:
            counters = dict(self._counters)
            fabric_invocations = self._fabric_invocations
            placed_weight = self._fabric_placed_weight
            fill_weight = self._fabric_fill_weight
        with self._lock:
            span_histograms = dict(self._span_histograms)
        doc = {
            "uptime_seconds": time.monotonic() - self.started_mono,
            "jobs": {
                "submitted": counters.get("submitted", 0),
                "rejected": counters.get("rejected", 0),
                "completed": counters.get("completed", 0),
                "failed": counters.get("failed", 0),
                "coalesced": counters.get("coalesced", 0),
            },
            "latency_seconds": self.latency.summary(),
            "latency_histogram": self.latency_histogram.summary(),
            "queue_wait_seconds": self.queue_wait.summary(),
            "spans": {
                name: histogram.summary()
                for name, histogram in sorted(span_histograms.items())
            },
            "lifecycle": {
                name[len("lifecycle."):]: value
                for name, value in counters.items()
                if name.startswith("lifecycle.")
            },
            "cycle_buckets": {
                name[len("bucket."):]: value
                for name, value in counters.items()
                if name.startswith("bucket.")
            },
            "trace_fates": {
                name[len("fate."):]: value
                for name, value in counters.items()
                if name.startswith("fate.")
            },
            "engine_memo": {
                "hits": counters.get("engine.memo_hits", 0),
                "misses": counters.get("engine.memo_misses", 0),
                "batched_invocations": counters.get(
                    "engine.batched_invocations", 0),
            },
            "fabric_utilization": {
                "invocations_observed": fabric_invocations,
                "placed_pe_ratio": (
                    placed_weight / fabric_invocations
                    if fabric_invocations else 0.0),
                "stripe_fill": (
                    fill_weight / fabric_invocations
                    if fabric_invocations else 0.0),
            },
            "cache": self.cache_stats(),
        }
        # Worker-pool gauges ride every snapshot, zero-filled when no
        # scheduler (or a stats-less stub) is attached, so the
        # `repro_workers_*` families never disappear between scrapes.
        from repro.service.workers import idle_worker_stats

        stats_fn = getattr(scheduler, "worker_stats", None)
        doc["workers"] = stats_fn() if stats_fn else idle_worker_stats()
        if queue is not None:
            doc["queue"] = queue.stats()
        if scheduler is not None:
            doc["flights_in_flight"] = scheduler.in_flight()
        return doc
