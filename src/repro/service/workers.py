"""Worker pools: how a scheduler batch turns into simulated cycles.

The scheduler is policy (batching, single-flight dedup, completion
bookkeeping); a :class:`WorkerPool` is mechanism — it owns the executor
that actually runs ``execute_batch`` and reports busy/total gauges plus
a batch-duration histogram for ``/metrics``.

Three pools implement the same ``run_batch`` contract:

* :class:`ProcessWorkerPool` (the default) forks one process per worker
  — the paper-scale answer to the GIL.  Each batch re-applies the disk
  cache config, sheds inherited telemetry with ``begin_worker``, and
  ships its profiler counters, disk-cache stats, wall-clock spans, and
  final progress heartbeats back for the parent to merge, exactly like
  ``repro.harness.parallel`` does for sweep fan-out.  The
  content-addressed disk cache (``REPRO_CACHE_DIR``) is the shared
  artifact store: a result simulated by any worker is a disk hit for
  every other worker — and for every other replica pointed at the same
  root.
* :class:`ThreadWorkerPool` keeps the original in-process thread
  executor (zero fork overhead, live mid-batch heartbeats; throughput
  capped by the GIL).
* :class:`InjectedWorkerPool` wraps a test-supplied ``execute_batch_fn``
  with the legacy two-argument call signature.

``default_workers()`` is ``min(cpu, 8)`` capped by ``REPRO_MAX_JOBS`` —
the same env contract the harness pool honors.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import repro.harness.diskcache as diskcache
from repro.harness.parallel import max_jobs
from repro.harness.profiling import PROFILER
from repro.obs.runtime import TRACER, begin_worker, worker_telemetry
from repro.service.metrics import LatencyHistogram

#: Hard ceiling on the process-pool default; wider pools thrash the
#: small queue depths the service runs with.
MAX_DEFAULT_WORKERS = 8

POOL_KINDS = ("process", "thread")


def default_workers() -> int:
    """Default pool width: ``min(cpu, 8)``, capped by ``REPRO_MAX_JOBS``."""
    workers = min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS)
    cap = max_jobs()
    if cap is not None:
        workers = min(workers, cap)
    return max(1, workers)


def idle_worker_stats(kind: str = "none") -> dict:
    """The zero-filled stats shape (gauges must exist while idle)."""
    return {
        "kind": kind,
        "total": 0,
        "busy": 0,
        "batches_total": 0,
        "batch_seconds": LatencyHistogram().summary(),
    }


def _process_batch(
    requests: list,
    sim_jobs: int,
    job_ids: dict,
    cache_enabled: bool,
    cache_root: str | None,
    telemetry: dict | None,
) -> tuple[dict, dict, dict, dict, dict]:
    """One scheduler batch inside a forked worker process.

    Returns ``(outcomes, heartbeats, profiler_snapshot, disk_stats,
    spans)``.  The parent folds the last four back in: without the merge
    a process-pool service would report zero simulated runs, zero cache
    writes, and span histograms with a hole where all the work happened.
    Heartbeats cannot stream across the process boundary mid-batch, so
    the worker records the last beat per flight and the parent applies
    them at completion.
    """
    from repro.service.scheduler import execute_batch

    diskcache.configure(enabled=cache_enabled, root=cache_root)
    PROFILER.reset()  # forked workers inherit the parent's totals
    begin_worker(telemetry)
    beats: dict = {}

    def collect(key, beat) -> None:
        beats[key] = beat

    outcomes = execute_batch(
        requests, sim_jobs, progress_cb=collect, job_ids=job_ids
    )
    spans = {"pid": os.getpid(), **TRACER.snapshot()}
    return outcomes, beats, PROFILER.snapshot(), diskcache.shared_stats(), spans


class WorkerPool:
    """Common gauges + batch accounting; subclasses supply the executor."""

    kind = "base"

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self._lock = threading.Lock()
        self._busy = 0
        self._batches_total = 0
        self._batch_seconds = LatencyHistogram()

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _track(self):
        with self._lock:
            self._busy += 1
        started = time.monotonic()
        try:
            yield
        finally:
            elapsed = time.monotonic() - started
            with self._lock:
                self._busy -= 1
                self._batches_total += 1
            self._batch_seconds.observe(elapsed)

    def stats(self) -> dict:
        with self._lock:
            busy = self._busy
            batches = self._batches_total
        return {
            "kind": self.kind,
            "total": self.workers,
            "busy": busy,
            "batches_total": batches,
            "batch_seconds": self._batch_seconds.summary(),
        }

    # ------------------------------------------------------------------
    async def run_batch(
        self, requests: list, sim_jobs: int, job_ids: dict, on_progress=None
    ) -> dict:
        """Execute one deduplicated batch; returns the outcome map."""
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:
        raise NotImplementedError


class ThreadWorkerPool(WorkerPool):
    """The original in-process executor (GIL-bound, live heartbeats)."""

    kind = "thread"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-sim"
        )

    async def run_batch(
        self, requests, sim_jobs, job_ids, on_progress=None
    ) -> dict:
        from repro.service.scheduler import execute_batch

        call = functools.partial(
            execute_batch, requests, sim_jobs,
            progress_cb=on_progress, job_ids=job_ids,
        )
        loop = asyncio.get_running_loop()
        with self._track():
            return await loop.run_in_executor(self._executor, call)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


class InjectedWorkerPool(WorkerPool):
    """Test seam: a thread executor around ``execute_batch_fn`` with the
    legacy two-argument call (no progress/correlation plumbing)."""

    kind = "injected"

    def __init__(self, workers: int, execute_batch_fn) -> None:
        super().__init__(workers)
        self._fn = execute_batch_fn
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-sim"
        )

    async def run_batch(
        self, requests, sim_jobs, job_ids, on_progress=None
    ) -> dict:
        call = functools.partial(self._fn, requests, sim_jobs)
        loop = asyncio.get_running_loop()
        with self._track():
            return await loop.run_in_executor(self._executor, call)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


class ProcessWorkerPool(WorkerPool):
    """Forked workers: one core of simulation per worker, no GIL cap."""

    kind = "process"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._context = multiprocessing.get_context()
        self._executor = self._make_executor()
        self._warm_fork()

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._context
        )

    def _warm_fork(self) -> None:
        # Fork the worker processes now, while the calling thread owns
        # no harness locks, instead of lazily mid-request.
        try:
            futures = [
                self._executor.submit(os.getpid) for _ in range(self.workers)
            ]
            for future in futures:
                future.result(timeout=60)
        except Exception:  # pragma: no cover - warmup is best-effort
            pass

    async def run_batch(
        self, requests, sim_jobs, job_ids, on_progress=None
    ) -> dict:
        call = functools.partial(
            _process_batch, requests, sim_jobs, job_ids,
            diskcache.is_enabled(), diskcache.configured_root(),
            worker_telemetry(),
        )
        loop = asyncio.get_running_loop()
        with self._track():
            try:
                outcomes, beats, profile, disk, spans = (
                    await loop.run_in_executor(self._executor, call)
                )
            except BrokenProcessPool:
                # A dead worker (OOM, segfault) poisons the whole
                # executor; rebuild so the next batch gets a live pool,
                # then let the scheduler fail this batch's flights.
                self._executor.shutdown(wait=False)
                self._executor = self._make_executor()
                raise
        PROFILER.merge_snapshot(profile)
        diskcache.merge_stats(disk)
        TRACER.merge(spans, process=f"worker-{spans.get('pid', '?')}")
        if on_progress is not None:
            for key, beat in beats.items():
                on_progress(key, beat)
        return outcomes

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


def make_pool(kind: str, workers: int) -> WorkerPool:
    """Build a pool by name (the ``repro serve --pool`` values)."""
    if kind == "process":
        return ProcessWorkerPool(workers)
    if kind == "thread":
        return ThreadWorkerPool(workers)
    raise ValueError(
        f"unknown worker pool kind {kind!r}; expected one of {POOL_KINDS}"
    )
