"""Bounded job queue with admission control and finished-job retention.

The queue is the service's only growth point, so every dimension is
capped: ``depth`` bounds *open* jobs (queued + running — real
backpressure, not just a waiting-room limit) and ``retention`` bounds
how many terminal jobs stay queryable before the oldest are evicted.
Memory is therefore O(depth + retention) no matter how hard clients
hammer the server.

The class is a plain synchronized state machine — no sockets, no
asyncio — so the admission/transition logic is unit-testable on its
own; the server wraps it with an event loop and wakes the scheduler
after each successful submit.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.service.errors import Draining, QueueFull, UnknownJob
from repro.service.jobs import Job, JobRequest, JobState


class JobQueue:
    """Admission-controlled FIFO of jobs with bounded retention."""

    def __init__(self, depth: int = 64, retention: int = 256) -> None:
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.depth = depth
        self.retention = retention
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._pending: deque[str] = deque()
        self._running: set[str] = set()
        self._finished: deque[str] = deque()
        self._closed = False
        # Monotonic totals (survive eviction; metrics reads these).
        self.submitted_total = 0
        self.rejected_total = 0
        self.done_total = 0
        self.failed_total = 0
        self.evicted_total = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Admit a new job or raise :class:`QueueFull`/:class:`Draining`."""
        with self._lock:
            if self._closed:
                raise Draining("server is draining; not accepting new jobs")
            open_jobs = len(self._pending) + len(self._running)
            if open_jobs >= self.depth:
                self.rejected_total += 1
                raise QueueFull(
                    f"queue full: {open_jobs} open jobs (depth {self.depth})"
                )
            job = Job(request=request)
            self._jobs[job.id] = job
            self._pending.append(job.id)
            self.submitted_total += 1
            return job

    def close(self) -> None:
        """Stop admitting; already-open jobs keep draining."""
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Scheduler side
    # ------------------------------------------------------------------
    def next_batch(self, max_jobs: int) -> list[Job]:
        """Pop up to ``max_jobs`` queued jobs, transitioning them to running."""
        batch: list[Job] = []
        with self._lock:
            while self._pending and len(batch) < max_jobs:
                job = self._jobs[self._pending.popleft()]
                job.state = JobState.RUNNING
                job.started_at = time.time()
                job.started_mono = time.monotonic()
                self._running.add(job.id)
                batch.append(job)
        return batch

    def finish(self, job_id: str, result: dict) -> Job:
        return self._complete(job_id, JobState.DONE, result=result)

    def fail(self, job_id: str, error: str) -> Job:
        return self._complete(job_id, JobState.FAILED, error=error)

    def _complete(self, job_id: str, state: str, result: dict | None = None,
                  error: str | None = None) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJob(f"no such job: {job_id}")
            if job.state != JobState.RUNNING:
                raise ValueError(
                    f"job {job_id} is {job.state}, cannot move to {state}"
                )
            self._running.discard(job_id)
            job.state = state
            job.result = result
            job.error = error
            job.finished_at = time.time()
            job.finished_mono = time.monotonic()
            if state == JobState.DONE:
                self.done_total += 1
            else:
                self.failed_total += 1
            self._finished.append(job_id)
            while len(self._finished) > self.retention:
                evicted = self._finished.popleft()
                self._jobs.pop(evicted, None)
                self.evicted_total += 1
            return job

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(f"no such job: {job_id}")
        return job

    def jobs(self) -> list[Job]:
        """All retained jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created_at)

    def queued_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def running_count(self) -> int:
        with self._lock:
            return len(self._running)

    def open_count(self) -> int:
        with self._lock:
            return len(self._pending) + len(self._running)

    def is_idle(self) -> bool:
        with self._lock:
            return not self._pending and not self._running

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.depth,
                "queued": len(self._pending),
                "running": len(self._running),
                "open": len(self._pending) + len(self._running),
                "retained": len(self._jobs),
                "submitted_total": self.submitted_total,
                "rejected_total": self.rejected_total,
                "done_total": self.done_total,
                "failed_total": self.failed_total,
                "evicted_total": self.evicted_total,
                "draining": self._closed,
            }
