"""Job model: validated requests and their lifecycle records.

A :class:`JobRequest` is the canonical form of one simulation request
(benchmark + scale + config knobs).  Its :attr:`~JobRequest.flight_key`
is built from the harness ``RunKey``s, so two requests that would hit
the same cache entries coalesce into one flight — the same identity the
run caches use, which is what makes single-flight dedup safe.

A :class:`Job` is one *submission*: several jobs may share a flight but
each keeps its own id, timestamps, and state machine
(``queued -> running -> done | failed``).
"""

from __future__ import annotations

import math
import time
import uuid
from dataclasses import dataclass, field

from repro.service.errors import InvalidJob
from repro.workloads import ALL_ABBREVS, BENCHMARKS

VALID_MODES = ("baseline", "mapping_only", "accelerate")
VALID_MAPPERS = ("resource_aware", "naive")

#: Validation bounds.  Scale 1.0 is the paper's problem size; the cap
#: keeps one request from pinning a worker for hours.
MAX_SCALE = 16.0
MIN_TRACE_LENGTH, MAX_TRACE_LENGTH = 4, 256
MAX_FABRICS = 8

_REQUEST_FIELDS = (
    "benchmark", "scale", "mode", "speculation", "trace_length",
    "fabrics", "mapper", "decisions",
)


def validate_benchmark(name) -> str:
    """Canonical benchmark abbreviation, or :class:`InvalidJob`."""
    if not isinstance(name, str) or not name.strip():
        raise InvalidJob(f"benchmark must be a non-empty string, got {name!r}")
    abbrev = name.strip().upper()
    if abbrev not in BENCHMARKS:
        raise InvalidJob(
            f"unknown benchmark {name!r}; available: {', '.join(ALL_ABBREVS)}"
        )
    return abbrev


def validate_scale(scale) -> float:
    """Scale as a bounded positive float, or :class:`InvalidJob`."""
    if isinstance(scale, bool):
        raise InvalidJob(f"invalid scale {scale!r}: must be a number")
    try:
        value = float(scale)
    except (TypeError, ValueError):
        raise InvalidJob(f"invalid scale {scale!r}: must be a number") from None
    if not math.isfinite(value) or not 0.0 < value <= MAX_SCALE:
        raise InvalidJob(
            f"invalid scale {scale!r}: must be finite and in (0, {MAX_SCALE:g}]"
        )
    return value


def _validate_int(name: str, value, low: int, high: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidJob(f"invalid {name} {value!r}: must be an integer")
    if not low <= value <= high:
        raise InvalidJob(
            f"invalid {name} {value!r}: must be in [{low}, {high}]"
        )
    return value


@dataclass(frozen=True)
class JobRequest:
    """One validated simulation request (the unit of dedup and caching)."""

    benchmark: str
    scale: float = 1.0
    mode: str = "accelerate"
    speculation: bool = True
    trace_length: int = 32
    fabrics: int = 1
    mapper: str = "resource_aware"
    #: Attach the decision-record block (trace fates, lost-cycle
    #: attribution) to the report.  Forces a traced execution, so it is
    #: part of the flight identity.
    decisions: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmark",
                           validate_benchmark(self.benchmark))
        object.__setattr__(self, "scale", validate_scale(self.scale))
        if self.mode not in VALID_MODES:
            raise InvalidJob(
                f"invalid mode {self.mode!r}; one of: {', '.join(VALID_MODES)}"
            )
        if self.mapper not in VALID_MAPPERS:
            raise InvalidJob(
                f"invalid mapper {self.mapper!r}; "
                f"one of: {', '.join(VALID_MAPPERS)}"
            )
        if not isinstance(self.speculation, bool):
            raise InvalidJob(
                f"invalid speculation {self.speculation!r}: must be a boolean"
            )
        if not isinstance(self.decisions, bool):
            raise InvalidJob(
                f"invalid decisions {self.decisions!r}: must be a boolean"
            )
        _validate_int("trace_length", self.trace_length,
                      MIN_TRACE_LENGTH, MAX_TRACE_LENGTH)
        _validate_int("fabrics", self.fabrics, 1, MAX_FABRICS)

    @classmethod
    def from_payload(cls, payload) -> "JobRequest":
        """Build a request from a decoded JSON body, rejecting junk keys."""
        if not isinstance(payload, dict):
            raise InvalidJob("request body must be a JSON object")
        unknown = sorted(set(payload) - set(_REQUEST_FIELDS))
        if unknown:
            raise InvalidJob(
                f"unknown field(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(_REQUEST_FIELDS)}"
            )
        if "benchmark" not in payload:
            raise InvalidJob("missing required field: benchmark")
        return cls(**payload)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in _REQUEST_FIELDS}

    # ------------------------------------------------------------------
    # Harness plumbing
    # ------------------------------------------------------------------
    def specs(self) -> list:
        """The harness ``RunSpec``s this request resolves to."""
        from repro.core import DynaSpAMConfig
        from repro.harness.runner import baseline_spec, dynaspam_spec

        config = DynaSpAMConfig(
            mode=self.mode,
            speculation=self.speculation,
            trace_length=self.trace_length,
            num_fabrics=self.fabrics,
            mapper=self.mapper,
        )
        return [
            baseline_spec(self.benchmark, self.scale),
            dynaspam_spec(self.benchmark, self.scale, config=config),
        ]

    @property
    def flight_key(self) -> tuple:
        """Cache-layer identity: equal keys may share one execution.

        ``decisions`` is appended because a decisions run carries an extra
        report block — it must not coalesce with (or serve) a plain run.
        """
        return tuple(spec.key for spec in self.specs()) + (
            ("decisions", self.decisions),
        )

    @property
    def run_key(self) -> str:
        """Short stable digest of :attr:`flight_key` — the correlation id
        spans and log lines carry (the raw key is a deep tuple)."""
        import hashlib

        return hashlib.sha256(
            repr(self.flight_key).encode()
        ).hexdigest()[:12]

    def execute(self) -> dict:
        """Run (or cache-resolve) the simulation and build the report."""
        from repro.harness.runner import simulation_report

        return simulation_report(
            self.benchmark,
            self.scale,
            mode=self.mode,
            speculation=self.speculation,
            trace_length=self.trace_length,
            num_fabrics=self.fabrics,
            mapper=self.mapper,
            decisions=self.decisions,
        )


class JobState:
    """String states of a job's lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    TERMINAL = (DONE, FAILED)
    ALL = (QUEUED, RUNNING, DONE, FAILED)


def new_job_id() -> str:
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass
class Job:
    """One submission's lifecycle record.

    Epoch stamps (``created_at``/``started_at``/``finished_at``) are for
    display — clients render calendar times from them.  Durations come
    from the ``*_mono`` monotonic twins: an NTP step between submit and
    finish would silently corrupt any ``time.time()`` subtraction.
    """

    request: JobRequest
    id: str = field(default_factory=new_job_id)
    state: str = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    created_mono: float = field(default_factory=time.monotonic)
    started_mono: float | None = None
    finished_mono: float | None = None
    result: dict | None = None
    error: str | None = None
    #: True when this job attached to another job's in-flight execution.
    coalesced: bool = False
    #: Latest progress heartbeat (``GET /v1/jobs/{id}/progress``); the
    #: executor thread replaces the whole dict, never mutates it.
    progress: dict | None = None

    @property
    def queue_wait_seconds(self) -> float | None:
        if self.started_mono is None:
            return None
        return max(0.0, self.started_mono - self.created_mono)

    @property
    def run_seconds(self) -> float | None:
        if self.started_mono is None or self.finished_mono is None:
            return None
        return max(0.0, self.finished_mono - self.started_mono)

    @property
    def total_seconds(self) -> float | None:
        if self.finished_mono is None:
            return None
        return max(0.0, self.finished_mono - self.created_mono)

    def to_doc(self, include_result: bool = True) -> dict:
        doc = {
            "id": self.id,
            "state": self.state,
            "request": self.request.as_dict(),
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait_seconds": self.queue_wait_seconds,
            "run_seconds": self.run_seconds,
            "coalesced": self.coalesced,
            "error": self.error,
        }
        if include_result:
            doc["result"] = self.result
        return doc

    def progress_doc(self) -> dict:
        """The ``/v1/jobs/{id}/progress`` body: lifecycle plus the most
        recent heartbeat, cheap enough to poll every few hundred ms."""
        return {
            "id": self.id,
            "state": self.state,
            "terminal": self.state in JobState.TERMINAL,
            "coalesced": self.coalesced,
            "queue_wait_seconds": self.queue_wait_seconds,
            "run_seconds": self.run_seconds,
            "heartbeat": self.progress,
            "error": self.error,
        }
