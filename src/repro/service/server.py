"""Asyncio HTTP/1.1 front end for the simulation service (stdlib only).

The wire protocol is deliberately tiny: JSON request/response bodies,
``Connection: close`` per request, bounded header and body sizes.

Endpoints::

    GET  /healthz        -> {"status": "ok" | "draining"}
    GET  /metrics        -> counters, queue gauges, latency percentiles
                            (JSON by default; ``Accept: text/plain`` gets
                            Prometheus text exposition 0.0.4)
    POST /v1/jobs        -> 202 {"job": {...}} | 400 | 429 (+Retry-After) | 503
    GET  /v1/jobs        -> {"jobs": [...]} (retained jobs, no result bodies)
    GET  /v1/jobs/{id}   -> job document with result when done | 404
    GET  /v1/jobs/{id}/progress
                         -> lifecycle state + latest heartbeat (live
                            done/total + instr/s while running); cheap
                            enough for sub-second polling (``repro watch``)

Graceful shutdown (``SIGTERM``/``SIGINT`` under ``repro serve``): the
listener closes, the queue stops admitting (503), and the scheduler
drains every already-admitted job before the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading

from repro.obs.runtime import TRACER
from repro.service.errors import ServiceError
from repro.service.jobs import JobRequest
from repro.service.metrics import ServiceMetrics
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler

DEFAULT_PORT = 8763

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 256 * 1024
READ_TIMEOUT = 30.0

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceServer:
    """One service instance: queue + scheduler + metrics + listener."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        workers: int | None = None,
        queue_depth: int = 64,
        sim_jobs: int = 1,
        retention: int = 256,
        max_batch: int = 8,
        pool: str = "process",
    ) -> None:
        self.host = host
        self.port = port
        self.queue = JobQueue(depth=queue_depth, retention=retention)
        self.metrics = ServiceMetrics()
        self.scheduler = Scheduler(
            self.queue, self.metrics,
            workers=workers, sim_jobs=sim_jobs, max_batch=max_batch,
            pool=pool,
        )
        self.workers = self.scheduler.workers
        self.pool_kind = self.scheduler.pool.kind
        self._server: asyncio.base_events.Server | None = None
        # Host-runtime telemetry: the service always traces (spans feed
        # the `repro_span_duration_seconds` histograms on /metrics; the
        # JSONL log additionally attaches when REPRO_LOG is set).  The
        # run_id spans every job of this server's lifetime; per-flight
        # job_id/run_key attrs come from the scheduler's bindings.
        self._tracer_was_enabled = TRACER.enabled
        self.run_id = TRACER.enable()
        self._span_listener = self.metrics.span_listener()
        TRACER.add_listener(self._span_listener)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.scheduler.start()

    async def stop(self) -> None:
        """Graceful shutdown: stop listening, stop admitting, drain."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.queue.close()
        await self.scheduler.drain()
        TRACER.remove_listener(self._span_listener)
        if not self._tracer_was_enabled:
            TRACER.disable()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            status, extra_headers, body = await self._handle_request(reader)
        except _HttpError as exc:
            status, extra_headers = exc.status, {}
            body = json.dumps(
                {"error": {"code": "http_error", "message": str(exc)}}
            ).encode()
        except Exception as exc:  # noqa: BLE001 — never kill the acceptor
            status, extra_headers = 500, {}
            body = json.dumps(
                {"error": {"code": "internal_error",
                           "message": f"{type(exc).__name__}: {exc}"}}
            ).encode()
        try:
            writer.write(self._render(status, extra_headers, body))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _render(status: int, extra_headers: dict, body: bytes) -> bytes:
        reason = _REASONS.get(status, "Unknown")
        extra = dict(extra_headers)
        content_type = extra.pop("Content-Type", "application/json")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        lines += [f"{name}: {value}" for name, value in extra.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode() + body

    async def _handle_request(self, reader):
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=READ_TIMEOUT
            )
        except asyncio.TimeoutError:
            raise _HttpError(408, "timed out reading request") from None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts

        headers: dict[str, str] = {}
        total = 0
        while True:
            line = await asyncio.wait_for(
                reader.readline(), timeout=READ_TIMEOUT
            )
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise _HttpError(413, "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                length = int(length)
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
            if length > MAX_BODY_BYTES:
                raise _HttpError(413, "request body too large")
            if length:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=READ_TIMEOUT
                )
        path = target.split("?", 1)[0].rstrip("/") or "/"
        return self._route(method.upper(), path, body, headers)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method: str, path: str, body: bytes,
               headers: dict | None = None):
        headers = headers or {}
        try:
            if path == "/healthz" and method == "GET":
                return self._get_health()
            if path == "/metrics" and method == "GET":
                return self._get_metrics(headers.get("accept", ""))
            if path == "/v1/jobs":
                if method == "POST":
                    return self._post_job(body)
                if method == "GET":
                    return self._list_jobs()
                raise _HttpError(405, f"{method} not allowed on {path}")
            if (path.startswith("/v1/jobs/") and path.count("/") == 4
                    and path.endswith("/progress")):
                if method != "GET":
                    raise _HttpError(405, f"{method} not allowed on {path}")
                return self._get_progress(path.split("/")[3])
            if path.startswith("/v1/jobs/") and path.count("/") == 3:
                if method != "GET":
                    raise _HttpError(405, f"{method} not allowed on {path}")
                return self._get_job(path.rsplit("/", 1)[1])
            raise _HttpError(404, f"no such endpoint: {method} {path}")
        except ServiceError as exc:
            extra = {}
            if getattr(exc, "retry_after", None) is not None:
                extra["Retry-After"] = str(exc.retry_after)
            return exc.http_status, extra, json.dumps(exc.to_doc()).encode()

    @staticmethod
    def _ok(doc: dict, status: int = 200, extra: dict | None = None):
        return status, extra or {}, json.dumps(doc).encode()

    def _get_health(self):
        status = "draining" if self.queue.closed else "ok"
        return self._ok({"status": status})

    def _get_metrics(self, accept: str = ""):
        snapshot = self.metrics.snapshot(self.queue, self.scheduler)
        accept = accept.lower()
        if "text/plain" in accept or "openmetrics" in accept:
            from repro.obs.prometheus import CONTENT_TYPE, render_prometheus

            return (200, {"Content-Type": CONTENT_TYPE},
                    render_prometheus(snapshot).encode())
        return self._ok(snapshot)

    def _post_job(self, body: bytes):
        try:
            payload = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _HttpError(400, "request body is not valid JSON") from None
        request = JobRequest.from_payload(payload)
        try:
            job = self.queue.submit(request)
        except ServiceError as exc:
            if exc.http_status == 429:
                exc.retry_after = self.metrics.retry_after_hint(
                    self.queue.open_count(), self.workers
                )
                self.metrics.bump("rejected")
            raise
        self.metrics.bump("submitted")
        self.scheduler.wake()
        return self._ok({"job": job.to_doc(include_result=False)}, status=202)

    def _get_job(self, job_id: str):
        job = self.queue.get(job_id)
        return self._ok({"job": job.to_doc()})

    def _get_progress(self, job_id: str):
        job = self.queue.get(job_id)
        return self._ok({"progress": job.progress_doc()})

    def _list_jobs(self):
        return self._ok(
            {"jobs": [job.to_doc(include_result=False)
                      for job in self.queue.jobs()]}
        )


# ---------------------------------------------------------------------------
# Blocking entry points
# ---------------------------------------------------------------------------
def run_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    workers: int | None = None,
    queue_depth: int = 64,
    sim_jobs: int = 1,
    pool: str = "process",
) -> int:
    """Run a server until SIGTERM/SIGINT, drain, and return 0 (CLI body)."""

    async def _main() -> None:
        server = ServiceServer(
            host, port,
            workers=workers, queue_depth=queue_depth, sim_jobs=sim_jobs,
            pool=pool,
        )
        await server.start()
        print(
            f"repro.service listening on http://{server.host}:{server.port} "
            f"(pool={server.pool_kind} workers={server.workers} "
            f"queue-depth={queue_depth} sim-jobs={sim_jobs})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                signal.signal(signum, lambda *_: stop.set())
        await stop.wait()
        print("repro.service draining ...", flush=True)
        await server.stop()
        stats = server.queue.stats()
        print(
            f"repro.service drained (done={stats['done_total']} "
            f"failed={stats['failed_total']}), exiting",
            flush=True,
        )

    asyncio.run(_main())
    return 0


class ThreadedServer:
    """A server on a background thread (tests and in-process embedding).

    Usage::

        with ThreadedServer(queue_depth=8) as server:
            client = ServiceClient(port=server.port)
            ...
    """

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("port", 0)
        self.server = ServiceServer(**kwargs)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self.server.stop())
        self._loop.close()

    def start(self) -> "ThreadedServer":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=60)

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
