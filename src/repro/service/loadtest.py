"""Open-loop load generator + SLO report for the simulation service.

``repro loadtest`` drives a running service (a single ``repro serve`` or
a ``repro route`` fleet — same wire protocol) with a Poisson-free,
deterministic open-loop schedule: job *i* is due at ``i / rate`` seconds
after start, and its latency is measured **from that due time**, not
from when the client thread got around to submitting it.  That is the
standard defense against coordinated omission — a closed-loop client
that waits for each response before sending the next one hides every
queueing delay the service caused.

Traffic mixes:

* ``cold-heavy``     — every job is a distinct ``RunKey`` (benchmark
  rotation x per-job scale jitter): measures raw simulation throughput,
  i.e. how many cores the worker pool really turns into jobs/sec.
* ``duplicate-heavy`` — bursts of identical payloads back-to-back:
  measures single-flight dedup (the coalesce ratio) and shared-cache
  reuse.
* ``mixed``          — alternating halves of each.

The JSON report carries client-side numbers (throughput, p50/p99 from
the due-time clock) and server-side deltas read from ``/metrics`` before
and after the run (coalesce ratio, worker utilization, and the
submitted == completed + failed conservation check).
``scripts/check_loadtest_slo.py`` gates CI on it the way
``check_perf_slo`` gates perfbench.
"""

from __future__ import annotations

import math
import random
import threading
import time

from repro.service.client import (
    JobFailed,
    ServerBusy,
    ServiceClient,
    ServiceUnreachable,
)

LOADTEST_SCHEMA_VERSION = 1

MIXES = ("cold-heavy", "duplicate-heavy", "mixed")

#: Consecutive identical submissions per duplicate-heavy burst.  Three
#: back-to-back duplicates land inside one scheduler batch window (or on
#: a still-open flight), which is what makes coalescing observable.
BURST = 3

#: Benchmarks the generator rotates through — small Table 3 kernels so
#: a smoke-scale loadtest stays cheap.
BENCHMARK_ROTATION = ("KM", "NW", "BFS")


def _duplicate_bases(scale: float) -> list[dict]:
    return [
        {"benchmark": abbrev, "scale": round(scale * (1 + 0.5 * index), 6)}
        for index, abbrev in enumerate(BENCHMARK_ROTATION)
    ]


def build_schedule(
    mix: str, total: int, *, scale: float = 0.05, seed: int = 0
) -> list[dict]:
    """The deterministic payload sequence for a mix (``total`` entries)."""
    if mix not in MIXES:
        raise ValueError(f"unknown mix {mix!r}; expected one of {MIXES}")
    rng = random.Random(seed)
    payloads: list[dict] = []
    bases = _duplicate_bases(scale)
    cold_index = 0
    for index in range(total):
        if mix == "duplicate-heavy":
            base = bases[(index // BURST) % len(bases)]
            payloads.append(dict(base))
        elif mix == "cold-heavy":
            abbrev = BENCHMARK_ROTATION[
                cold_index % len(BENCHMARK_ROTATION)
            ]
            # Unique scale per job => unique RunKey => a real simulation
            # (modulo prior disk-cache state) instead of a dedup hit.
            jitter = 1.0 + 0.003 * cold_index + 0.0001 * rng.random()
            payloads.append(
                {"benchmark": abbrev, "scale": round(scale * jitter, 6)}
            )
            cold_index += 1
        else:  # mixed: even slots duplicate a base, odd slots are cold
            if index % 2 == 0:
                payloads.append(dict(bases[(index // 2) % len(bases)]))
            else:
                jitter = 1.0 + 0.003 * cold_index + 0.0001 * rng.random()
                payloads.append({
                    "benchmark": BENCHMARK_ROTATION[
                        cold_index % len(BENCHMARK_ROTATION)
                    ],
                    "scale": round(scale * jitter, 6),
                })
                cold_index += 1
    return payloads


def _percentiles(samples: list[float]) -> dict:
    if not samples:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                "p99": 0.0, "max": 0.0}
    ordered = sorted(samples)

    def rank(pct: float) -> float:
        position = math.ceil(pct / 100.0 * len(ordered))
        return ordered[max(0, min(len(ordered) - 1, position - 1))]

    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": rank(50),
        "p90": rank(90),
        "p99": rank(99),
        "max": ordered[-1],
    }


def _delta(after: dict, before: dict, *path) -> float:
    node_a, node_b = after, before
    for key in path:
        node_a = (node_a or {}).get(key, 0)
        node_b = (node_b or {}).get(key, 0)
    try:
        return (node_a or 0) - (node_b or 0)
    except TypeError:
        return 0


def run_loadtest(
    host: str = "127.0.0.1",
    port: int = 8763,
    *,
    rate: float = 2.0,
    duration: float | None = 5.0,
    total: int | None = None,
    mix: str = "cold-heavy",
    scale: float = 0.05,
    seed: int = 0,
    timeout: float = 300.0,
    poll_interval: float = 0.02,
) -> dict:
    """Run one open-loop loadtest and return the report dict.

    ``total`` overrides ``ceil(rate * duration)``.  Raises
    :class:`ServiceUnreachable` if the target is down at the start.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if total is None:
        total = max(1, math.ceil(rate * (duration or 5.0)))
    payloads = build_schedule(mix, total, scale=scale, seed=seed)
    client = ServiceClient(host, port, timeout=min(timeout, 60.0))
    before = client.metrics()

    lock = threading.Lock()
    records: list[dict] = []
    start = time.monotonic()

    def drive(index: int, payload: dict) -> None:
        due = start + index / rate
        delay = due - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        record = {"index": index, "benchmark": payload["benchmark"],
                  "outcome": "error"}
        submit_t0 = time.monotonic()
        try:
            job = client.submit(**payload)
            record["submit_seconds"] = time.monotonic() - submit_t0
            final = client.wait(
                job["id"], timeout=timeout, poll_interval=poll_interval
            )
            record["outcome"] = "completed"
            record["coalesced"] = bool(final.get("coalesced"))
        except ServerBusy as exc:
            record["outcome"] = "rejected"
            record["retry_after"] = exc.retry_after
        except JobFailed as exc:
            record["outcome"] = "failed"
            record["error"] = str(exc)
        except (ServiceUnreachable, TimeoutError) as exc:
            record["outcome"] = "error"
            record["error"] = str(exc)
        # Latency from the *scheduled* arrival: includes any client-side
        # submit stall the server caused (coordinated-omission-safe).
        record["latency_seconds"] = time.monotonic() - due
        with lock:
            records.append(record)

    threads = [
        threading.Thread(
            target=drive, args=(index, payload),
            name=f"loadtest-{index}", daemon=True,
        )
        for index, payload in enumerate(payloads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - start
    after = client.metrics()

    outcomes = {"completed": 0, "failed": 0, "rejected": 0, "error": 0}
    for record in records:
        outcomes[record["outcome"]] = outcomes.get(record["outcome"], 0) + 1
    completed_latencies = [
        record["latency_seconds"] for record in records
        if record["outcome"] == "completed"
    ]
    submit_latencies = [
        record["submit_seconds"] for record in records
        if "submit_seconds" in record
    ]
    client_coalesced = sum(
        1 for record in records if record.get("coalesced")
    )

    submitted_delta = _delta(after, before, "jobs", "submitted")
    completed_delta = _delta(after, before, "jobs", "completed")
    failed_delta = _delta(after, before, "jobs", "failed")
    coalesced_delta = _delta(after, before, "jobs", "coalesced")
    workers_total = (after.get("workers") or {}).get("total", 0)
    busy_seconds = _delta(
        after, before, "workers", "batch_seconds", "sum"
    )
    utilization = (
        busy_seconds / (workers_total * wall)
        if workers_total and wall > 0 else 0.0
    )

    return {
        "experiment": "loadtest",
        "loadtest_schema_version": LOADTEST_SCHEMA_VERSION,
        "url": f"http://{host}:{port}",
        "mix": mix,
        "scale": scale,
        "seed": seed,
        "rate_target_jobs_per_sec": rate,
        "jobs_total": total,
        "wall_clock_seconds": wall,
        "client": {
            "attempted": len(records),
            "completed": outcomes["completed"],
            "failed": outcomes["failed"],
            "rejected": outcomes["rejected"],
            "errors": outcomes["error"],
            "coalesced_observed": client_coalesced,
        },
        "throughput_jobs_per_sec": (
            outcomes["completed"] / wall if wall > 0 else 0.0
        ),
        "latency_seconds": _percentiles(completed_latencies),
        "submit_latency_seconds": _percentiles(submit_latencies),
        "server": {
            "workers": {
                "kind": (after.get("workers") or {}).get("kind", "none"),
                "total": workers_total,
                "busy_seconds_delta": busy_seconds,
                "utilization": min(1.0, utilization),
            },
            "submitted_delta": submitted_delta,
            "completed_delta": completed_delta,
            "failed_delta": failed_delta,
            "coalesced_delta": coalesced_delta,
            "rejected_delta": _delta(after, before, "jobs", "rejected"),
            "coalesce_ratio": (
                coalesced_delta / submitted_delta if submitted_delta else 0.0
            ),
            "conserved": submitted_delta == completed_delta + failed_delta,
        },
    }


def summarize(report: dict) -> str:
    """One human line for the CLI (stdout stays the JSON document)."""
    latency = report["latency_seconds"]
    server = report["server"]
    conserved = "conserved" if server["conserved"] else "NOT CONSERVED"
    return (
        f"loadtest({report['mix']}): "
        f"{report['throughput_jobs_per_sec']:.2f} jobs/s | "
        f"p50 {latency['p50']:.3f}s p99 {latency['p99']:.3f}s | "
        f"coalesce {100 * server['coalesce_ratio']:.1f}% | "
        f"util {100 * server['workers']['utilization']:.1f}% | "
        f"{conserved}"
    )
