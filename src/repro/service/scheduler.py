"""Batching scheduler: queue -> single-flight dedup -> worker pool.

The dispatch loop pulls queued jobs in batches, coalesces jobs whose
``flight_key`` matches an in-flight execution (single-flight: the
duplicate attaches to the leader's flight and never simulates), shards
the batch of *new* flights across idle workers, and hands each shard to
a :class:`repro.service.workers.WorkerPool` — forked processes by
default, so N workers really are N cores of simulation.

Inside a worker the batch first warms the harness caches through
``repro.harness.parallel`` — one ``execute_runs`` call over the union of
the batch's ``RunSpec``s, optionally fanning out over ``sim_jobs``
processes — and then builds each request's report from what are now
pure cache hits.  Repeat requests across batches short-circuit the same
way: the layered run caches (including the shared on-disk store) serve
them without re-simulating.

Everything that mutates queue/flight state runs on the event loop
thread; pool workers only execute pure simulation code.  That keeps
the state machine race-free without fine-grained locking.
"""

from __future__ import annotations

import asyncio
import time

from repro.obs.progress import ProgressTracker
from repro.obs.runtime import TRACER
from repro.service.jobs import Job, JobRequest
from repro.service.metrics import ServiceMetrics
from repro.service.queue import JobQueue
from repro.service.workers import (
    InjectedWorkerPool,
    WorkerPool,
    default_workers,
    make_pool,
)


class Flight:
    """One in-flight execution shared by every job with the same key."""

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.jobs: list[Job] = []


class FlightTable:
    """Single-flight registry keyed by ``JobRequest.flight_key``."""

    def __init__(self) -> None:
        self._flights: dict[tuple, Flight] = {}

    def lease(self, key: tuple) -> tuple[Flight, bool]:
        """The flight for ``key`` plus whether the caller is its leader."""
        flight = self._flights.get(key)
        if flight is not None:
            return flight, False
        flight = Flight(key)
        self._flights[key] = flight
        return flight, True

    def land(self, key: tuple) -> None:
        self._flights.pop(key, None)

    def __len__(self) -> int:
        return len(self._flights)

    def __contains__(self, key: tuple) -> bool:
        return key in self._flights


def execute_batch(
    requests: list[JobRequest],
    sim_jobs: int = 1,
    progress_cb=None,
    job_ids: dict | None = None,
) -> dict:
    """Resolve one batch of deduplicated requests (runs in a worker thread).

    Returns ``{flight_key: ("ok", report) | ("error", message)}`` — a
    failure in one request never poisons its batchmates.

    ``progress_cb(flight_key, heartbeat)`` (optional) receives a
    progress heartbeat as each request starts and finishes; ``job_ids``
    maps flight keys to leader job ids so every span recorded inside a
    request execution carries ``job_id``/``run_key`` correlation attrs.
    """
    from repro.harness.parallel import warm_cache

    job_ids = job_ids or {}
    specs = [spec for request in requests for spec in request.specs()]
    tracker = ProgressTracker(len(requests), label="batch")

    def notify(request, phase: str) -> None:
        if progress_cb is None:
            return
        beat = tracker.heartbeat(detail=request.benchmark)
        beat["phase"] = phase
        try:
            progress_cb(request.flight_key, beat)
        except Exception:  # noqa: BLE001 — progress must never kill a batch
            pass

    with TRACER.span("service.execute_batch",
                     requests=len(requests), sim_jobs=sim_jobs):
        if sim_jobs > 1:
            try:
                warm_cache(specs, jobs=sim_jobs)
            except Exception:
                # Fall through: per-request execution surfaces the error.
                pass
        out: dict[tuple, tuple[str, object]] = {}
        for request in requests:
            notify(request, "running")
            with TRACER.bind(job_id=job_ids.get(request.flight_key),
                             run_key=request.run_key):
                with TRACER.span("service.execute_request",
                                 benchmark=request.benchmark):
                    try:
                        outcome = ("ok", request.execute())
                    except Exception as exc:  # noqa: BLE001 — report it
                        outcome = (
                            "error", f"{type(exc).__name__}: {exc}"
                        )
            out[request.flight_key] = outcome
            instructions = 0
            if outcome[0] == "ok" and isinstance(outcome[1], dict):
                instructions = int(
                    outcome[1].get("dynamic_instructions", 0) or 0
                )
            tracker.advance(1, instructions, detail=request.benchmark)
            notify(request, "finished" if outcome[0] == "ok" else "failed")
    return out


class Scheduler:
    """Owns the dispatch loop, the flight table, and the worker pool."""

    def __init__(
        self,
        queue: JobQueue,
        metrics: ServiceMetrics,
        *,
        workers: int | None = None,
        sim_jobs: int = 1,
        max_batch: int = 8,
        execute_batch_fn=None,
        pool: str | WorkerPool = "process",
    ) -> None:
        self.queue = queue
        self.metrics = metrics
        self.workers = max(1, workers) if workers else default_workers()
        self.sim_jobs = max(1, sim_jobs)
        self.max_batch = max(1, max_batch)
        #: Injected executors (tests) keep the legacy two-argument call;
        #: only the stock pools get progress/correlation plumbing.
        if execute_batch_fn is not None:
            self.pool: WorkerPool = InjectedWorkerPool(
                self.workers, execute_batch_fn
            )
        elif isinstance(pool, WorkerPool):
            self.pool = pool
            self.workers = pool.workers
        else:
            self.pool = make_pool(pool, self.workers)
        self.flights = FlightTable()
        self._wakeup = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()
        self._draining = False
        self._loop_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._loop_task = asyncio.get_running_loop().create_task(self._run())

    def wake(self) -> None:
        self._wakeup.set()

    def in_flight(self) -> int:
        return len(self.flights)

    def worker_stats(self) -> dict:
        """Pool gauges for ``/metrics`` (kind, busy/total, batch times)."""
        return self.pool.stats()

    async def drain(self) -> None:
        """Stop dispatching new work once the queue and flights are empty."""
        self._draining = True
        self.wake()
        if self._loop_task is not None:
            await self._loop_task
        self.pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            batch = self.queue.next_batch(self.max_batch)
            if batch:
                self._dispatch(batch)
                continue
            if self._draining and self.queue.queued_count() == 0:
                if self._tasks:
                    await asyncio.wait(set(self._tasks))
                    continue
                break
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout=0.1)
            except asyncio.TimeoutError:
                pass

    def _dispatch(self, batch: list[Job]) -> None:
        new_flights: list[Flight] = []
        for job in batch:
            flight, leader = self.flights.lease(job.request.flight_key)
            flight.jobs.append(job)
            if leader:
                new_flights.append(flight)
            else:
                job.coalesced = True
                self.metrics.bump("coalesced")
        if new_flights:
            # Shard the batch across workers: one big batch on one
            # worker would serialize what the pool could parallelize.
            shards = min(self.workers, len(new_flights))
            loop = asyncio.get_running_loop()
            for index in range(shards):
                task = loop.create_task(
                    self._run_flights(new_flights[index::shards])
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    async def _run_flights(self, flights: list[Flight]) -> None:
        requests = [flight.jobs[0].request for flight in flights]
        flight_map = {flight.key: flight for flight in flights}
        for flight in flights:
            for job in flight.jobs:
                job.progress = {
                    "phase": "dispatched",
                    "requests_total": len(requests),
                }
        # Heartbeats arrive on a worker thread (thread pool: live,
        # mid-batch) or on the loop thread after the batch returns
        # (process pool: the worker's final beats, merged back); writing
        # a fresh dict per update keeps readers race-free without a lock.
        def on_progress(key, beat):
            flight = flight_map.get(key)
            if flight is not None:
                for job in list(flight.jobs):
                    job.progress = beat

        job_ids = {flight.key: flight.jobs[0].id for flight in flights}
        try:
            outcomes = await self.pool.run_batch(
                requests, self.sim_jobs, job_ids, on_progress
            )
        except Exception as exc:  # pool broken / executor-level failure
            outcomes = {
                flight.key: ("error", f"{type(exc).__name__}: {exc}")
                for flight in flights
            }
        now = time.monotonic()
        for flight in flights:
            # Land before completing so a post-completion duplicate
            # starts a fresh flight (and is then served by the caches).
            self.flights.land(flight.key)
            status, value = outcomes.get(
                flight.key, ("error", "executor returned no outcome")
            )
            for job in flight.jobs:
                if status == "ok":
                    self.queue.finish(job.id, value)
                    self.metrics.bump("completed")
                    self.metrics.observe_report(value)
                else:
                    self.queue.fail(job.id, str(value))
                    self.metrics.bump("failed")
                # Monotonic end-to-end latency: wall-clock deltas would
                # absorb any clock step between submit and finish.
                self.metrics.observe_latency(now - job.created_mono)
                wait = job.queue_wait_seconds
                if wait is not None:
                    self.metrics.observe_queue_wait(wait)
                final = dict(job.progress or {})
                final["phase"] = "done" if status == "ok" else "failed"
                job.progress = final
        self.wake()
