"""Small blocking client for the simulation service.

One fresh ``http.client`` connection per request (the server speaks
``Connection: close``), JSON in/out, typed exceptions::

    client = ServiceClient(port=8763)
    report = client.run("KM", scale=0.25)          # submit + wait
    job = client.submit("BFS", scale=0.5)          # fire and poll later
    doc = client.wait(job["id"], timeout=120)
"""

from __future__ import annotations

import http.client
import json
import random
import time

from repro.service.errors import (
    Draining,
    InvalidJob,
    ServiceError,
    UnknownJob,
)

DEFAULT_PORT = 8763

#: Poll-backoff ceiling: a long job is checked at most every ~2s.
POLL_CAP_SECONDS = 2.0
POLL_BACKOFF_FACTOR = 1.7


def poll_intervals(
    initial: float = 0.05,
    cap: float = POLL_CAP_SECONDS,
    factor: float = POLL_BACKOFF_FACTOR,
    rng=None,
):
    """Yield capped, exponentially growing poll delays with jitter.

    Each delay is the current base times a uniform 0.5–1.5 jitter,
    clamped to ``cap``.  The jitter decorrelates a fleet of waiting
    clients (a loadtest, N CI jobs) so their status polls don't arrive
    in lockstep; the cap bounds worst-case completion-detection lag.
    ``rng`` is an injection seam for deterministic tests (a callable
    returning uniform [0, 1) floats).
    """
    rng = rng if rng is not None else random.random
    base = max(0.001, float(initial))
    while True:
        yield min(cap, base * (0.5 + rng()))
        base = min(cap, base * factor)


class ServiceUnreachable(ServiceError):
    """The server could not be reached (connect/read failure)."""

    code = "unreachable"


class ServerBusy(ServiceError):
    """The server rejected the job with 429; honor ``retry_after``."""

    code = "queue_full"
    http_status = 429

    def __init__(self, message: str, retry_after: int = 1) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobFailed(ServiceError):
    """The job reached the ``failed`` state; ``job`` is its final doc."""

    code = "job_failed"

    def __init__(self, job: dict) -> None:
        super().__init__(job.get("error") or "job failed")
        self.job = job


class ServiceClient:
    """Blocking HTTP client; safe to share across threads (stateless)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None):
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
        except (ConnectionError, OSError, http.client.HTTPException) as exc:
            raise ServiceUnreachable(
                f"cannot reach repro service at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()
        try:
            doc = json.loads(raw.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = None
        if status < 400:
            return doc
        message = "unexpected error"
        if isinstance(doc, dict):
            message = doc.get("error", {}).get("message", message)
        if status == 429:
            raise ServerBusy(message, retry_after=int(retry_after or 1))
        if status == 400:
            raise InvalidJob(message)
        if status == 404:
            raise UnknownJob(message)
        if status == 503:
            raise Draining(message)
        error = ServiceError(message)
        error.http_status = status
        raise error

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """Prometheus text exposition from ``/metrics`` (Accept-negotiated)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/metrics",
                         headers={"Accept": "text/plain"})
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ServiceError(
                    f"/metrics returned HTTP {response.status}"
                )
        except (ConnectionError, OSError, http.client.HTTPException) as exc:
            raise ServiceUnreachable(
                f"cannot reach repro service at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()
        return raw.decode("utf-8")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def submit(self, benchmark: str, **knobs) -> dict:
        """Submit a job; returns its (queued) document."""
        payload = {"benchmark": benchmark, **knobs}
        return self._request("POST", "/v1/jobs", payload)["job"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def progress(self, job_id: str) -> dict:
        """Lifecycle state + latest heartbeat (``repro watch`` polls this)."""
        return self._request(
            "GET", f"/v1/jobs/{job_id}/progress"
        )["progress"]

    def watch(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_interval: float = 0.2,
        on_progress=None,
    ) -> dict:
        """Poll the progress endpoint until terminal, invoking
        ``on_progress(progress_doc)`` on every state/heartbeat change.
        Returns the final progress document (raises :class:`JobFailed`
        on the failed state, like :meth:`wait`).

        ``poll_interval`` seeds an exponential backoff with jitter
        (capped at ~2s): early polls stay fast enough to catch short
        jobs, while long jobs are not hammered at a fixed rate."""
        deadline = time.monotonic() + timeout
        intervals = poll_intervals(poll_interval)
        last = None
        while True:
            doc = self.progress(job_id)
            snapshot = (doc.get("state"), doc.get("heartbeat"))
            if on_progress is not None and snapshot != last:
                last = snapshot
                try:
                    on_progress(doc)
                except Exception:  # noqa: BLE001 — render errors don't abort
                    pass
            if doc.get("terminal"):
                if doc.get("state") == "failed":
                    raise JobFailed(doc)
                return doc
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc.get('state')} "
                    f"after {timeout:g}s"
                )
            time.sleep(min(next(intervals), max(0.0, deadline - now)))

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_interval: float = 0.05,
    ) -> dict:
        """Poll until the job is terminal; returns the final document.

        Raises :class:`JobFailed` on the ``failed`` state and
        :class:`TimeoutError` when the deadline passes first.
        Polling backs off exponentially with jitter from
        ``poll_interval`` up to ~2s per probe (see
        :func:`poll_intervals`).
        """
        deadline = time.monotonic() + timeout
        intervals = poll_intervals(poll_interval)
        while True:
            doc = self.job(job_id)
            if doc["state"] == "done":
                return doc
            if doc["state"] == "failed":
                raise JobFailed(doc)
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after {timeout:g}s"
                )
            time.sleep(min(next(intervals), max(0.0, deadline - now)))

    def run(self, benchmark: str, *, timeout: float = 600.0, **knobs) -> dict:
        """Submit and wait; returns the simulation report itself."""
        job = self.submit(benchmark, **knobs)
        return self.wait(job["id"], timeout=timeout)["result"]
