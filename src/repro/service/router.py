"""Replica router: consistent-hash dispatch across N ``repro serve`` replicas.

One router process fronts a fleet of independent service replicas and
speaks the exact same wire protocol, so every existing client
(:class:`repro.service.client.ServiceClient`, ``repro submit``,
``repro loadtest``) works unchanged against it:

* ``POST /v1/jobs`` parses the payload just enough to compute its
  ``RunKey`` and forwards to the key's ring owner.  Consistent hashing
  is what keeps single-flight dedup working across replicas: every
  duplicate of a spec lands on the same replica, whose flight table
  coalesces it, and cold results land in the shared content-addressed
  disk cache (``REPRO_CACHE_DIR``) where every other replica reads them.
* ``GET /v1/jobs/{id}[...]`` proxies to the replica that admitted the
  job (the router remembers recent admissions; unknown ids fall back to
  asking every replica).
* ``GET /metrics`` aggregates every live replica's snapshot — counters
  and histograms sum bucket-wise, ring percentiles merge count-weighted
  — into the same shape ``ServiceMetrics.snapshot`` produces, so the
  Prometheus renderer and loadtest delta math apply unchanged.
* ``GET /healthz`` reports the fleet: ``ok`` / ``degraded`` / ``down``.

Health checking probes each replica's ``/healthz``; a draining replica
(graceful shutdown) or an unreachable one is evicted from the ring —
only its share of the keyspace remaps (consistent hashing's point) —
and re-added when it reports healthy again.

Everything is stdlib: ``http.server`` for the front end (one thread per
in-flight proxied request; the replicas do the heavy lifting) and
``http.client`` for the replica calls.
"""

from __future__ import annotations

import bisect
import hashlib
import http.client
import json
import signal
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.errors import ServiceError
from repro.service.jobs import JobRequest

DEFAULT_ROUTER_PORT = 8764

#: Virtual nodes per replica.  128 points keeps the keyspace split
#: within a few percent of uniform for small fleets while the ring
#: stays tiny (N * 128 ints).
DEFAULT_VNODES = 128

#: Most-recent job-id -> replica admissions the router remembers.
JOB_MAP_CAPACITY = 8192


class NoHealthyReplicas(ServiceError):
    code = "no_healthy_replicas"
    http_status = 503


# ---------------------------------------------------------------------------
# Consistent hashing
# ---------------------------------------------------------------------------
class HashRing:
    """Consistent-hash ring with virtual nodes (stable SHA-256 points).

    Adding or removing a node only remaps the keys that hashed to that
    node's arcs — about ``1/len(nodes)`` of the keyspace — which is the
    property that preserves cross-replica single-flight dedup and cache
    locality through membership churn.
    """

    def __init__(self, nodes=(), vnodes: int = DEFAULT_VNODES) -> None:
        self.vnodes = max(1, int(vnodes))
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _point(label: str) -> int:
        return int(hashlib.sha256(label.encode()).hexdigest()[:16], 16)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for vnode in range(self.vnodes):
            point = self._point(f"{node}#{vnode}")
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def owner(self, key: str, skip=()) -> str | None:
        """The node owning ``key``, walking past ``skip`` members."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, self._point(key))
        for offset in range(len(self._points)):
            candidate = self._owners[(index + offset) % len(self._points)]
            if candidate not in skip:
                return candidate
        return None


# ---------------------------------------------------------------------------
# Metrics aggregation (pure functions over snapshot dicts)
# ---------------------------------------------------------------------------
def _merge_histogram(target: dict, part: dict) -> dict:
    """Sum two ``LatencyHistogram.summary()`` dicts bucket-wise."""
    if not target:
        return {
            "buckets": [list(pair) for pair in part.get("buckets", [])],
            "sum": part.get("sum", 0.0),
            "count": part.get("count", 0),
        }
    counts = {
        upper: count for upper, count in target.get("buckets", [])
    }
    for upper, count in part.get("buckets", []):
        counts[upper] = counts.get(upper, 0) + count
    return {
        "buckets": [[upper, counts[upper]] for upper in counts],
        "sum": target.get("sum", 0.0) + part.get("sum", 0.0),
        "count": target.get("count", 0) + part.get("count", 0),
    }


def _merge_ring_summary(parts: list[dict]) -> dict:
    """Merge latency-ring summaries: exact count/max, count-weighted
    percentiles (an approximation — exact merged quantiles would need
    the raw samples, which never leave a replica)."""
    total = sum(part.get("count", 0) for part in parts)
    if not total:
        return {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    merged = {"count": total, "max": max(p.get("max", 0.0) for p in parts)}
    for quantile in ("p50", "p90", "p99"):
        merged[quantile] = sum(
            part.get(quantile, 0.0) * part.get("count", 0) for part in parts
        ) / total
    return merged


def _sum_counter_maps(parts: list[dict]) -> dict:
    out: dict = {}
    for part in parts:
        for key, value in (part or {}).items():
            if isinstance(value, bool):
                out[key] = out.get(key, False) or value
            elif isinstance(value, (int, float)):
                out[key] = out.get(key, 0) + value
            elif isinstance(value, dict):
                out[key] = _sum_counter_maps([out.get(key, {}), value])
    return out


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Aggregate replica ``/metrics`` snapshots into one fleet snapshot.

    The result keeps the exact ``ServiceMetrics.snapshot`` shape, so
    ``render_prometheus`` and anything that reads per-field deltas
    (``repro loadtest``) work identically against a router.
    """
    snapshots = [snap for snap in snapshots if snap]
    doc: dict = {
        "aggregated": True,
        "replica_count": len(snapshots),
        "uptime_seconds": max(
            (snap.get("uptime_seconds", 0.0) for snap in snapshots),
            default=0.0,
        ),
        "flights_in_flight": sum(
            snap.get("flights_in_flight", 0) for snap in snapshots
        ),
        "latency_seconds": _merge_ring_summary(
            [snap.get("latency_seconds", {}) for snap in snapshots]
        ),
        "queue_wait_seconds": _merge_ring_summary(
            [snap.get("queue_wait_seconds", {}) for snap in snapshots]
        ),
    }
    for key in ("jobs", "lifecycle", "cycle_buckets", "trace_fates",
                "engine_memo", "cache", "queue"):
        doc[key] = _sum_counter_maps(
            [snap.get(key, {}) for snap in snapshots]
        )
    histogram: dict = {}
    for snap in snapshots:
        histogram = _merge_histogram(
            histogram, snap.get("latency_histogram", {})
        )
    doc["latency_histogram"] = histogram
    spans: dict = {}
    for snap in snapshots:
        for name, part in (snap.get("spans") or {}).items():
            spans[name] = _merge_histogram(spans.get(name, {}), part or {})
    doc["spans"] = {name: spans[name] for name in sorted(spans)}
    workers: dict = {"kind": "fleet", "total": 0, "busy": 0,
                     "batches_total": 0, "batch_seconds": {}}
    for snap in snapshots:
        part = snap.get("workers") or {}
        workers["total"] += part.get("total", 0)
        workers["busy"] += part.get("busy", 0)
        workers["batches_total"] += part.get("batches_total", 0)
        workers["batch_seconds"] = _merge_histogram(
            workers["batch_seconds"], part.get("batch_seconds", {})
        )
    doc["workers"] = workers
    invocations = 0
    placed = 0.0
    fill = 0.0
    for snap in snapshots:
        util = snap.get("fabric_utilization") or {}
        weight = util.get("invocations_observed", 0)
        invocations += weight
        placed += util.get("placed_pe_ratio", 0.0) * weight
        fill += util.get("stripe_fill", 0.0) * weight
    doc["fabric_utilization"] = {
        "invocations_observed": invocations,
        "placed_pe_ratio": placed / invocations if invocations else 0.0,
        "stripe_fill": fill / invocations if invocations else 0.0,
    }
    return doc


# ---------------------------------------------------------------------------
# The router itself
# ---------------------------------------------------------------------------
class Replica:
    """One backend ``repro serve`` instance as the router sees it."""

    def __init__(self, host: str, port: int, proc=None) -> None:
        self.host = host
        self.port = port
        self.proc = proc  # subprocess handle when run_router spawned it
        self.state = "up"  # up | draining | down

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def healthy(self) -> bool:
        return self.state == "up"

    def describe(self) -> dict:
        return {"name": self.name, "state": self.state,
                "healthy": self.healthy}


class ReplicaRouter:
    """Routing + health state for a replica fleet (no sockets of its own;
    :class:`RouterServer` is the HTTP front end)."""

    def __init__(
        self,
        replicas=(),
        *,
        vnodes: int = DEFAULT_VNODES,
        health_interval: float | None = None,
        client_timeout: float = 30.0,
    ) -> None:
        self._lock = threading.Lock()
        self._replicas: dict[str, Replica] = {}
        self.ring = HashRing(vnodes=vnodes)
        self._jobs: OrderedDict[str, str] = OrderedDict()
        self.timeout = client_timeout
        self.stats: dict[str, int] = {
            "routed": 0, "rerouted": 0, "broadcast_lookups": 0,
            "evictions": 0, "recoveries": 0,
        }
        for host, port in replicas:
            self.add_replica(host, port)
        self._stop = threading.Event()
        self._health_thread: threading.Thread | None = None
        if health_interval:
            self._health_thread = threading.Thread(
                target=self._health_loop, args=(health_interval,),
                name="repro-router-health", daemon=True,
            )
            self._health_thread.start()

    # ------------------------------------------------------------------
    def add_replica(self, host: str, port: int, proc=None) -> Replica:
        replica = Replica(host, port, proc=proc)
        with self._lock:
            self._replicas[replica.name] = replica
            self.ring.add(replica.name)
        return replica

    def replicas(self) -> list[Replica]:
        with self._lock:
            return list(self._replicas.values())

    def close(self) -> None:
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5)

    # ------------------------------------------------------------------
    def _call(
        self,
        replica: Replica,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict, bytes]:
        conn = http.client.HTTPConnection(
            replica.host, replica.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            raw = response.read()
            return response.status, dict(response.getheaders()), raw
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def _health_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                self.check_health_once()
            except Exception:  # noqa: BLE001 — health must never die
                pass

    def check_health_once(self) -> dict:
        """Probe every replica once; evict draining/unreachable members
        from the ring, re-admit recovered ones.  Returns states by name."""
        states: dict[str, str] = {}
        for replica in self.replicas():
            try:
                status, _, raw = self._call(replica, "GET", "/healthz")
                doc = json.loads(raw.decode() or "{}")
                health = doc.get("status") if status < 400 else "down"
            except (OSError, http.client.HTTPException,
                    json.JSONDecodeError):
                health = "down"
            new_state = {"ok": "up", "draining": "draining"}.get(
                health, "down"
            )
            with self._lock:
                old_state = replica.state
                replica.state = new_state
                if new_state == "up" and old_state != "up":
                    self.ring.add(replica.name)
                    self.stats["recoveries"] += 1
                elif new_state != "up" and old_state == "up":
                    self.ring.remove(replica.name)
                    self.stats["evictions"] += 1
            states[replica.name] = new_state
        return states

    def _mark_down(self, replica: Replica) -> None:
        with self._lock:
            if replica.state == "up":
                self.stats["evictions"] += 1
            replica.state = "down"
            self.ring.remove(replica.name)

    def health_doc(self) -> dict:
        replicas = self.replicas()
        healthy = sum(1 for replica in replicas if replica.healthy)
        if healthy == len(replicas) and replicas:
            status = "ok"
        elif healthy:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "router": True,
            "replicas": [replica.describe() for replica in replicas],
            "routing": dict(self.stats),
        }

    # ------------------------------------------------------------------
    # Request handling (each returns (status, headers, body-bytes))
    # ------------------------------------------------------------------
    @staticmethod
    def _error(status: int, code: str, message: str):
        body = json.dumps(
            {"error": {"code": code, "message": message}}
        ).encode()
        return status, {}, body

    def _remember_job(self, job_id: str, name: str) -> None:
        with self._lock:
            self._jobs[job_id] = name
            self._jobs.move_to_end(job_id)
            while len(self._jobs) > JOB_MAP_CAPACITY:
                self._jobs.popitem(last=False)

    def dispatch_job(self, body: bytes):
        """Route one job submission to its ``RunKey``'s ring owner.

        An unreachable owner is evicted and the next arc owner tried —
        the job still runs, on the replica that now owns the remapped
        key — so a single dead replica degrades capacity, not service.
        """
        try:
            payload = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            return self._error(400, "invalid_job",
                               "request body is not valid JSON")
        try:
            request = JobRequest.from_payload(payload)
        except ServiceError as exc:
            return exc.http_status, {}, json.dumps(exc.to_doc()).encode()
        tried: set[str] = set()
        attempts = 0
        while True:
            with self._lock:
                name = self.ring.owner(request.run_key, skip=tried)
                replica = self._replicas.get(name) if name else None
            if replica is None:
                return self._error(
                    503, NoHealthyReplicas.code,
                    "no healthy replicas to route to",
                )
            try:
                status, headers, raw = self._call(
                    replica, "POST", "/v1/jobs", body=body,
                    headers={"Content-Type": "application/json"},
                )
            except (OSError, http.client.HTTPException):
                self._mark_down(replica)
                tried.add(replica.name)
                attempts += 1
                self.stats["rerouted"] += 1
                continue
            self.stats["routed"] += 1
            if status == 202:
                try:
                    job_id = json.loads(raw.decode())["job"]["id"]
                    self._remember_job(job_id, replica.name)
                except (KeyError, TypeError, json.JSONDecodeError):
                    pass
            out_headers = {}
            if "Retry-After" in headers:
                out_headers["Retry-After"] = headers["Retry-After"]
            return status, out_headers, raw

    def proxy_job_get(self, path: str, job_id: str):
        """Proxy a job/progress read to the admitting replica, falling
        back to a fleet-wide lookup for ids the router never saw."""
        with self._lock:
            name = self._jobs.get(job_id)
            replica = self._replicas.get(name) if name else None
        candidates = [replica] if replica is not None else []
        if not candidates:
            self.stats["broadcast_lookups"] += 1
            candidates = self.replicas()
        last = self._error(404, "unknown_job", f"no such job: {job_id}")
        for candidate in candidates:
            try:
                status, _, raw = self._call(candidate, "GET", path)
            except (OSError, http.client.HTTPException):
                continue
            if status != 404:
                if job_id not in self._jobs:
                    self._remember_job(job_id, candidate.name)
                return status, {}, raw
            last = (status, {}, raw)
        return last

    def list_jobs(self):
        jobs: list = []
        for replica in self.replicas():
            if not replica.healthy:
                continue
            try:
                status, _, raw = self._call(replica, "GET", "/v1/jobs")
                if status < 400:
                    jobs.extend(json.loads(raw.decode()).get("jobs", []))
            except (OSError, http.client.HTTPException,
                    json.JSONDecodeError):
                continue
        jobs.sort(key=lambda job: job.get("created_at") or 0)
        return 200, {}, json.dumps({"jobs": jobs}).encode()

    def aggregated_metrics(self, accept: str = ""):
        snapshots = []
        for replica in self.replicas():
            if not replica.healthy:
                continue
            try:
                status, _, raw = self._call(replica, "GET", "/metrics")
                if status < 400:
                    snapshots.append(json.loads(raw.decode()))
            except (OSError, http.client.HTTPException,
                    json.JSONDecodeError):
                continue
        snapshot = merge_snapshots(snapshots)
        snapshot["replicas"] = [
            replica.describe() for replica in self.replicas()
        ]
        snapshot["routing"] = dict(self.stats)
        accept = (accept or "").lower()
        if "text/plain" in accept or "openmetrics" in accept:
            from repro.obs.prometheus import CONTENT_TYPE, render_prometheus

            return (200, {"Content-Type": CONTENT_TYPE},
                    render_prometheus(snapshot).encode())
        return 200, {}, json.dumps(snapshot).encode()


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------
class _RouterHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:  # quiet by default
        pass

    def _respond(self, result) -> None:
        status, headers, body = result
        self.send_response(status)
        self.send_header(
            "Content-Type", headers.get("Content-Type", "application/json")
        )
        for name, value in headers.items():
            if name != "Content-Type":
                self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        router: ReplicaRouter = self.server.router
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            doc = router.health_doc()
            self._respond((200, {}, json.dumps(doc).encode()))
        elif path == "/metrics":
            self._respond(
                router.aggregated_metrics(self.headers.get("Accept", ""))
            )
        elif path == "/v1/jobs":
            self._respond(router.list_jobs())
        elif path.startswith("/v1/jobs/") and path.endswith("/progress"):
            self._respond(router.proxy_job_get(path, path.split("/")[3]))
        elif path.startswith("/v1/jobs/") and path.count("/") == 3:
            self._respond(router.proxy_job_get(path, path.rsplit("/", 1)[1]))
        else:
            self._respond(ReplicaRouter._error(
                404, "http_error", f"no such endpoint: GET {path}"
            ))

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        router: ReplicaRouter = self.server.router
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path != "/v1/jobs":
            self._respond(ReplicaRouter._error(
                404, "http_error", f"no such endpoint: POST {path}"
            ))
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length else b""
        self._respond(router.dispatch_job(body))


class RouterServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to a :class:`ReplicaRouter`."""

    daemon_threads = True

    def __init__(self, address, router: ReplicaRouter) -> None:
        super().__init__(address, _RouterHandler)
        self.router = router

    @property
    def port(self) -> int:
        return self.server_address[1]


# ---------------------------------------------------------------------------
# CLI entry point: spawn replicas, front them, drain on SIGTERM
# ---------------------------------------------------------------------------
def _spawn_replica(index: int, args: list[str]):
    """Start one ``repro serve --port 0`` child and parse its banner."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = proc.stdout.readline() if proc.stdout else ""
    import re

    match = re.search(r"http://([0-9.]+):(\d+)", banner)
    if not match:
        proc.kill()
        raise RuntimeError(
            f"replica {index} printed no listen banner: {banner!r}"
        )
    host, port = match.group(1), int(match.group(2))

    def _pump() -> None:
        for line in proc.stdout:
            print(f"[replica-{index}] {line}", end="",
                  file=sys.stderr, flush=True)

    threading.Thread(
        target=_pump, name=f"replica-{index}-log", daemon=True
    ).start()
    return proc, host, port


def run_router(
    host: str = "127.0.0.1",
    port: int = DEFAULT_ROUTER_PORT,
    *,
    replicas: int = 2,
    workers: int | None = None,
    queue_depth: int = 64,
    sim_jobs: int = 1,
    pool: str = "process",
    vnodes: int = DEFAULT_VNODES,
    health_interval: float = 1.0,
) -> int:
    """``repro route`` body: spawn N replicas, route until SIGTERM, drain."""
    replica_args: list[str] = [
        "--queue-depth", str(queue_depth), "--pool", pool,
    ]
    if workers:
        replica_args += ["--workers", str(workers)]
    if sim_jobs and sim_jobs > 1:
        replica_args += ["--jobs", str(sim_jobs)]

    router = ReplicaRouter(vnodes=vnodes, health_interval=health_interval)
    procs = []
    try:
        for index in range(max(1, replicas)):
            proc, replica_host, replica_port = _spawn_replica(
                index, replica_args
            )
            procs.append(proc)
            router.add_replica(replica_host, replica_port, proc=proc)
    except Exception:
        for proc in procs:
            proc.kill()
        router.close()
        raise

    server = RouterServer((host, port), router)
    print(
        f"repro.router listening on http://{host}:{server.port} "
        f"(replicas={len(procs)} pool={pool} "
        f"workers={workers or 'auto'} queue-depth={queue_depth})",
        flush=True,
    )

    def _shutdown(*_args) -> None:
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _shutdown)
    try:
        server.serve_forever()
    finally:
        print("repro.router draining replicas ...", flush=True)
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        drained = 0
        for proc in procs:
            try:
                proc.wait(timeout=180)
                drained += 1
            except subprocess.TimeoutExpired:
                proc.kill()
        router.close()
        server.server_close()
        print(f"repro.router drained (replicas={drained}/{len(procs)})",
              flush=True)
    return 0
