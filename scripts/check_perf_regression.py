#!/usr/bin/env python3
"""Compare a fresh ``repro perfbench`` report against the committed baseline.

Usage::

    python scripts/check_perf_regression.py CURRENT.json ci/perfbench_baseline.json

Two checks, one machine-dependent and one machine-invariant:

* **Throughput floor** — the fast engine's geomean dynamic
  instructions/sec must not fall more than ``--max-regression`` (default
  25%) below the baseline's.  Meaningful when the current report and the
  baseline come from comparable machines (CI runners); tune or skip with
  ``--max-regression`` when they do not.
* **Speedup floor** — the fast-vs-interpreted speedup ratio is measured
  within a single run on a single machine, so it transfers across
  hardware.  It must not fall more than ``--speedup-tolerance`` (default
  20%) below the baseline ratio: a "fast" engine that stops being fast
  relative to its own interpreted twin has regressed no matter how quick
  the runner is.

Schema mismatches fail loudly rather than comparing unlike reports.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop in fast-engine "
                             "geomean instr/sec vs the baseline")
    parser.add_argument("--speedup-tolerance", type=float, default=0.20,
                        help="allowed fractional drop in the fast-vs-"
                             "interpreted speedup vs the baseline")
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())

    failures = []
    for name, report in (("current", current), ("baseline", baseline)):
        if report.get("experiment") != "perfbench":
            failures.append(f"{name} report is not a perfbench report")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if (current.get("perfbench_schema_version")
            != baseline.get("perfbench_schema_version")):
        print("FAIL: perfbench schema versions differ "
              f"({current.get('perfbench_schema_version')} vs "
              f"{baseline.get('perfbench_schema_version')})",
              file=sys.stderr)
        return 1

    cur_fast = current["engines"]["fast"]["geomean_instr_per_sec"]
    base_fast = baseline["engines"]["fast"]["geomean_instr_per_sec"]
    floor = base_fast * (1.0 - args.max_regression)
    print(f"fast geomean: current {cur_fast:,.0f} instr/s vs baseline "
          f"{base_fast:,.0f} instr/s (floor {floor:,.0f})")
    if cur_fast < floor:
        failures.append(
            f"fast-engine throughput regressed to "
            f"{cur_fast / base_fast:.2f}x of baseline "
            f"(floor {1.0 - args.max_regression:.2f}x)")

    cur_speedup = current.get("speedup")
    base_speedup = baseline.get("speedup")
    if base_speedup:
        if cur_speedup is None:
            failures.append(
                "current report has no speedup (run both engines)")
        else:
            speedup_floor = base_speedup * (1.0 - args.speedup_tolerance)
            print(f"speedup: current {cur_speedup:.2f}x vs baseline "
                  f"{base_speedup:.2f}x (floor {speedup_floor:.2f}x)")
            if cur_speedup < speedup_floor:
                failures.append(
                    f"fast-vs-interpreted speedup fell to "
                    f"{cur_speedup:.2f}x (floor {speedup_floor:.2f}x)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: simulator throughput within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
