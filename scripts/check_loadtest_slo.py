#!/usr/bin/env python3
"""Gate CI on a ``repro loadtest`` report's SLOs.

Usage::

    python scripts/check_loadtest_slo.py REPORT.json \
        [--min-jobs-per-sec F] [--max-p99-seconds F] \
        [--min-coalesce-ratio F] [--max-failed N] \
        [--baseline BASELINE.json] [--throughput-floor 0.75] \
        [--p99-ceiling 1.5]

Always-on invariants (no flags needed):

* **Conservation** — the server-side delta must balance:
  ``submitted == completed + failed``.  A leak here means the scheduler
  lost a job (or completed one it never admitted), which no amount of
  throughput excuses.
* **Client accounting** — every attempted job has a terminal outcome
  (completed / failed / rejected / error), and error count is zero.

Absolute SLOs apply only when their flag is passed, so smoke jobs can
pin conservative floors while a perf rig pins aggressive ones.  With
``--baseline`` the report is also compared relatively, the same way
``check_perf_regression`` treats perfbench: throughput must stay above
``floor * baseline`` and p99 below ``ceiling * baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: Path) -> dict | None:
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_loadtest_slo: cannot read {path}: {exc}",
              file=sys.stderr)
        return None
    if report.get("experiment") != "loadtest":
        print(f"check_loadtest_slo: {path} is not a loadtest report",
              file=sys.stderr)
        return None
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path)
    parser.add_argument("--min-jobs-per-sec", type=float, default=None)
    parser.add_argument("--max-p99-seconds", type=float, default=None)
    parser.add_argument("--min-coalesce-ratio", type=float, default=None)
    parser.add_argument("--max-failed", type=int, default=0,
                        help="allowed failed jobs (default 0)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="prior loadtest report for relative gates")
    parser.add_argument("--throughput-floor", type=float, default=0.75,
                        help="fraction of baseline jobs/sec that must "
                             "be sustained")
    parser.add_argument("--p99-ceiling", type=float, default=1.5,
                        help="multiple of baseline p99 that must not "
                             "be exceeded")
    args = parser.parse_args(argv)

    report = _load(args.report)
    if report is None:
        return 1

    failures: list[str] = []
    server = report.get("server") or {}
    client = report.get("client") or {}
    throughput = report.get("throughput_jobs_per_sec", 0.0)
    p99 = (report.get("latency_seconds") or {}).get("p99", 0.0)
    coalesce = server.get("coalesce_ratio", 0.0)

    # Invariants
    if not server.get("conserved", False):
        failures.append(
            "conservation violated: server submitted delta "
            f"{server.get('submitted_delta')} != completed "
            f"{server.get('completed_delta')} + failed "
            f"{server.get('failed_delta')}"
        )
    accounted = (client.get("completed", 0) + client.get("failed", 0)
                 + client.get("rejected", 0) + client.get("errors", 0))
    if accounted != client.get("attempted", -1):
        failures.append(
            f"client accounting broken: attempted "
            f"{client.get('attempted')} != outcomes {accounted}"
        )
    if client.get("errors", 0):
        failures.append(f"{client['errors']} client-side errors "
                        "(unreachable/timeout)")
    if client.get("failed", 0) > args.max_failed:
        failures.append(
            f"{client['failed']} failed jobs > allowed {args.max_failed}"
        )

    # Absolute SLOs
    if (args.min_jobs_per_sec is not None
            and throughput < args.min_jobs_per_sec):
        failures.append(
            f"throughput {throughput:.3f} jobs/s below SLO "
            f"{args.min_jobs_per_sec:.3f}"
        )
    if args.max_p99_seconds is not None and p99 > args.max_p99_seconds:
        failures.append(
            f"p99 latency {p99:.3f}s above SLO {args.max_p99_seconds:.3f}s"
        )
    if (args.min_coalesce_ratio is not None
            and coalesce < args.min_coalesce_ratio):
        failures.append(
            f"coalesce ratio {coalesce:.3f} below SLO "
            f"{args.min_coalesce_ratio:.3f} (cross-job dedup not working)"
        )

    # Relative SLOs against a baseline report
    if args.baseline is not None:
        baseline = _load(args.baseline)
        if baseline is None:
            return 1
        if baseline.get("mix") != report.get("mix"):
            failures.append(
                f"mix mismatch vs baseline: {report.get('mix')} vs "
                f"{baseline.get('mix')}"
            )
        base_throughput = baseline.get("throughput_jobs_per_sec", 0.0)
        floor = args.throughput_floor * base_throughput
        if throughput < floor:
            failures.append(
                f"throughput {throughput:.3f} jobs/s below "
                f"{args.throughput_floor:.0%} of baseline "
                f"{base_throughput:.3f}"
            )
        base_p99 = (baseline.get("latency_seconds") or {}).get("p99", 0.0)
        if base_p99 > 0 and p99 > args.p99_ceiling * base_p99:
            failures.append(
                f"p99 {p99:.3f}s above {args.p99_ceiling:g}x baseline "
                f"{base_p99:.3f}s"
            )

    if failures:
        print(f"LOADTEST SLO FAILURES ({args.report}):", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"loadtest SLOs met ({report.get('mix')}): "
        f"{throughput:.2f} jobs/s, p99 {p99:.3f}s, "
        f"coalesce {coalesce:.1%}, conserved"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
