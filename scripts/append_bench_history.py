#!/usr/bin/env python3
"""Append one bench-history record to a JSONL ledger.

Usage::

    python scripts/append_bench_history.py BENCH.json .bench_history.jsonl

Reads a ``repro bench`` report and appends a single-line JSON record —
timestamp, commit, geomeans, accounting bucket totals, wall clock — so
the performance trajectory accumulates run over run.  The CI bench job
runs this after the regression gate and uploads the ledger with the
dashboard artifact; locally it works the same way against any report.

``repro perfbench`` reports (``experiment: perfbench``) are recognized
automatically and produce a throughput-shaped record instead: per-engine
geomean instructions/sec and the fast-vs-interpreted speedup.
``repro loadtest`` reports (``experiment: loadtest``) produce a
service-level record: jobs/sec, p50/p99 latency, coalesce ratio, and
worker utilization per traffic mix.

Timestamp and commit come from the CI environment when present
(``GITHUB_RUN_STARTED_AT`` / ``GITHUB_SHA``), falling back to the
current UTC time and ``git rev-parse HEAD``.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path


def _timestamp() -> str:
    stamped = os.environ.get("GITHUB_RUN_STARTED_AT")
    if stamped:
        return stamped
    return (datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"))


def _commit() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True, timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def bucket_totals(report: dict) -> dict:
    """Suite-wide cycles per bucket and series, summed over benchmarks."""
    totals: dict[str, dict[str, int]] = {}
    for by_series in (report.get("accounting") or {}).values():
        for series, breakdown in by_series.items():
            series_totals = totals.setdefault(series, {})
            for name, cycles in (breakdown.get("buckets") or {}).items():
                series_totals[name] = series_totals.get(name, 0) + cycles
    return totals


def perfbench_record(report: dict) -> dict:
    """History record for a ``repro perfbench`` (throughput) report."""
    engines = {
        name: {
            "geomean_instr_per_sec": summary.get("geomean_instr_per_sec"),
            "geomean_invocations_per_sec": summary.get(
                "geomean_invocations_per_sec"),
            "total_wall_seconds": summary.get("total_wall_seconds"),
            "total_memo_hits": summary.get("total_memo_hits"),
            "total_memo_misses": summary.get("total_memo_misses"),
            "total_batched_invocations": summary.get(
                "total_batched_invocations"),
        }
        for name, summary in (report.get("engines") or {}).items()
    }
    return {
        "timestamp": _timestamp(),
        "commit": _commit(),
        "experiment": "perfbench",
        "perfbench_schema_version": report.get("perfbench_schema_version"),
        "code_fingerprint": report.get("code_fingerprint"),
        "scale": report.get("scale"),
        "repeat": report.get("repeat"),
        "wall_clock_seconds": report.get("wall_clock_seconds"),
        "engines": engines,
        "speedup": report.get("speedup"),
    }


def program_rows(report: dict) -> dict:
    """Per-ingested-program speedup rows (``repro bench --programs``).

    Keyed by program stem; the content-hash abbreviation rides along so
    the history distinguishes records made against edited sources.
    """
    return {
        stem: {
            "abbrev": row.get("abbrev"),
            "speedup": row.get("speedup"),
            "baseline_cycles": row.get("baseline_cycles"),
            "dynaspam_cycles": row.get("dynaspam_cycles"),
            "dynamic_instructions": row.get("dynamic_instructions"),
        }
        for stem, row in (report.get("programs") or {}).items()
    }


def decision_summary(report: dict) -> dict | None:
    """Suite-wide trace-fate totals (``repro bench --decisions``).

    Sums the per-benchmark fate counts and carries a single conservation
    verdict, so the ledger records *why* coverage moved — more unmappable
    traces, more squash-dominated ones — alongside the speedup it moved to.
    """
    blocks = report.get("decisions") or {}
    if not blocks:
        return None
    totals: dict[str, int] = {}
    unmappable: dict[str, int] = {}
    conserved = True
    for block in blocks.values():
        fates = block.get("trace_fates") or {}
        for fate, count in (fates.get("counts") or {}).items():
            totals[fate] = totals.get(fate, 0) + count
        for reason, count in (fates.get("unmappable_reasons") or {}).items():
            unmappable[reason] = unmappable.get(reason, 0) + count
        conserved = conserved and bool(fates.get("conserved", True))
    return {
        "fate_totals": totals,
        "unmappable_reasons": unmappable,
        "conserved": conserved,
    }


def loadtest_record(report: dict) -> dict:
    """History record for a ``repro loadtest`` (service SLO) report."""
    server = report.get("server") or {}
    workers = server.get("workers") or {}
    latency = report.get("latency_seconds") or {}
    return {
        "timestamp": _timestamp(),
        "commit": _commit(),
        "experiment": "loadtest",
        "loadtest_schema_version": report.get("loadtest_schema_version"),
        "mix": report.get("mix"),
        "rate_target_jobs_per_sec": report.get("rate_target_jobs_per_sec"),
        "jobs_total": report.get("jobs_total"),
        "wall_clock_seconds": report.get("wall_clock_seconds"),
        "throughput_jobs_per_sec": report.get("throughput_jobs_per_sec"),
        "latency_p50_seconds": latency.get("p50"),
        "latency_p99_seconds": latency.get("p99"),
        "coalesce_ratio": server.get("coalesce_ratio"),
        "conserved": server.get("conserved"),
        "workers_total": workers.get("total"),
        "worker_utilization": workers.get("utilization"),
    }


def history_record(report: dict) -> dict:
    if report.get("experiment") == "perfbench":
        return perfbench_record(report)
    if report.get("experiment") == "loadtest":
        return loadtest_record(report)
    record = {
        "timestamp": _timestamp(),
        "commit": _commit(),
        "schema_version": report.get("schema_version"),
        "code_fingerprint": report.get("code_fingerprint"),
        "scale": report.get("scale"),
        "cold": report.get("cold"),
        "wall_clock_seconds": report.get("wall_clock_seconds"),
        "geomean": report.get("geomean", {}),
        "bucket_totals": bucket_totals(report),
        "warnings": report.get("warnings", []),
    }
    programs = program_rows(report)
    if programs:
        record["programs"] = programs
    decisions = decision_summary(report)
    if decisions:
        record["decisions"] = decisions
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path)
    parser.add_argument("history", type=Path)
    args = parser.parse_args(argv)

    try:
        report = json.loads(args.report.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"append_bench_history: cannot read {args.report}: {exc}",
              file=sys.stderr)
        return 1
    record = history_record(report)
    with args.history.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    if record.get("experiment") == "perfbench":
        fast = (record["engines"].get("fast") or {}).get(
            "geomean_instr_per_sec") or 0.0
        summary = f"(fast {fast:,.0f} instr/s)"
    elif record.get("experiment") == "loadtest":
        summary = (
            f"({record.get('mix')} "
            f"{record.get('throughput_jobs_per_sec') or 0.0:.2f} jobs/s)"
        )
    else:
        summary = f"(geomean spec {record['geomean'].get('spec', 0):.3f}x)"
    print(f"appended {record['commit'][:12]} @ {record['timestamp']} "
          f"-> {args.history} {summary}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
