"""Validate every corpus/*.spam end-to-end: parse/check round-trip,
interpreter vs lowered-program output, and per-pass output preservation.
Used during development; the same checks live in tests/lang/test_corpus.py."""

from __future__ import annotations

import copy
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.lang import (  # noqa: E402
    PASSES,
    check_module,
    execute_lowered,
    format_module,
    interpret,
    load_file,
    lower_module,
    output_of,
    parse_module,
    run_passes,
)


def main() -> int:
    corpus = sorted((pathlib.Path(__file__).resolve().parent.parent / "corpus").glob("*.spam"))
    if not corpus:
        print("no corpus programs found", file=sys.stderr)
        return 1
    failures = 0
    reductions: dict[str, list[str]] = {name: [] for name in PASSES}
    for path in corpus:
        try:
            module = load_file(str(path))
            reparsed = parse_module(format_module(module), filename=str(path))
            assert format_module(reparsed) == format_module(module), "round-trip mismatch"
            ref = interpret(module)
            lowered = lower_module(module, name=path.stem)
            got = output_of(execute_lowered(lowered))
            assert got == ref.output, f"lowered {got} != interp {ref.output}"
            base_dyn = ref.dynamic_count
            for name in PASSES:
                opt = run_passes(copy.deepcopy(module), [name])
                check_module(opt, allow_reserved=True)
                opt_res = interpret(opt)
                assert opt_res.output == ref.output, f"pass {name} changed output"
                if opt_res.dynamic_count < base_dyn:
                    reductions[name].append(path.stem)
            full = run_passes(copy.deepcopy(module), ["lvn", "dce", "licm"])
            check_module(full, allow_reserved=True)
            full_res = interpret(full)
            assert full_res.output == ref.output, "full pipeline changed output"
            full_lowered = lower_module(full, name=path.stem)
            full_got = output_of(execute_lowered(full_lowered))
            assert full_got == ref.output, "optimized lowering changed output"
            print(
                f"ok {path.name}: {len(ref.output)} words, dyn {base_dyn} -> "
                f"{full_res.dynamic_count}, static {lowered.static_size} -> "
                f"{full_lowered.static_size}"
            )
        except Exception as exc:  # noqa: BLE001
            failures += 1
            print(f"FAIL {path.name}: {exc}", file=sys.stderr)
    for name, progs in reductions.items():
        tag = "ok" if progs else "MISSING"
        print(f"{tag} pass {name} strictly reduces: {', '.join(progs) or '(none)'}")
        if not progs:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
