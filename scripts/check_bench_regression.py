#!/usr/bin/env python3
"""Compare a fresh ``repro bench`` report against the committed baseline.

Usage::

    python scripts/check_bench_regression.py CURRENT.json BASELINE.json

Fails (exit 1) when the current wall clock exceeds the baseline by more
than the allowed regression (default 25%, override with
``--max-regression 0.25``). Also sanity-checks that the simulated
geomeans match the baseline, so a "speedup" that changes the science is
caught even when it is faster.

``--require-cold`` additionally demands that the current report timed
real simulation: the bench must have run with ``--cold``, simulated at
least one run, and served nothing from the disk cache.  Without it a
fully-cached sweep (hit ratio 100%) can "pass" while measuring nothing.

``--require-null-sink`` demands the timed sweep ran with event tracing
disabled (the report's ``tracing`` field is false): a sweep traced into
a live sink measures instrumentation overhead, not the simulator, and
must never move the wall-clock baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GEOMEAN_TOLERANCE = 1e-9


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional wall-clock slowdown")
    parser.add_argument("--require-cold", action="store_true",
                        help="fail unless the current report timed real "
                             "simulation (cold caches, runs simulated)")
    parser.add_argument("--require-null-sink", action="store_true",
                        help="fail if the current report was produced with "
                             "event tracing enabled (tracing overhead must "
                             "not pollute the timing)")
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())

    cur_wall = current["wall_clock_seconds"]
    base_wall = baseline["wall_clock_seconds"]
    limit = base_wall * (1.0 + args.max_regression)
    ratio = cur_wall / base_wall if base_wall else float("inf")
    print(f"wall clock: current {cur_wall:.2f}s vs baseline {base_wall:.2f}s "
          f"({ratio:.2f}x, limit {limit:.2f}s)")

    cache = current.get("cache", {})
    runs_simulated = cache.get("runs_simulated", 0)
    disk_hits = sum(ns.get("hits", 0)
                    for ns in cache.get("disk", {}).values())
    hit_ratio = cache.get("hit_ratio")
    if hit_ratio is not None:
        print(f"cache: hit ratio {hit_ratio:.0%}, "
              f"{runs_simulated} runs simulated, {disk_hits} disk hits, "
              f"cold={current.get('cold', False)}")

    failures = []
    if cur_wall > limit:
        failures.append(
            f"wall clock regressed {ratio:.2f}x "
            f"(> {1.0 + args.max_regression:.2f}x allowed)")

    if args.require_cold:
        if not current.get("cold"):
            failures.append("report was not produced with --cold")
        if runs_simulated == 0:
            failures.append(
                "no runs were simulated: the timing measured cache replay")
        if disk_hits > 0:
            failures.append(
                f"{disk_hits} disk-cache hits in a cold run: timing is "
                "contaminated by cached results")

    if args.require_null_sink and current.get("tracing", False):
        failures.append(
            "report was produced with event tracing enabled: the wall "
            "clock includes sink overhead")

    for series, base_value in baseline["geomean"].items():
        cur_value = current["geomean"].get(series)
        if cur_value is None or abs(cur_value - base_value) > GEOMEAN_TOLERANCE:
            failures.append(
                f"geomean[{series}] drifted: {cur_value} vs {base_value}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: within budget, geomeans unchanged")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
