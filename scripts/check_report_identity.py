#!/usr/bin/env python3
"""Assert two ``repro run --json`` reports are identical modulo engine-tier
counters.

Usage::

    python scripts/check_report_identity.py reference.json candidate.json

The engine tiers (``REPRO_FASTPATH``, ``REPRO_MEMO``) are implementation
choices and must never change simulated results.  Their only sanctioned
trace is the simulator-internal hit/miss/batch counters
(``repro.engine.ENGINE_TIER_COUNTERS``), which this script zeroes
wherever they appear before demanding deep equality.  Any other
difference — a cycle count, a stat, a report field — is a modeling
divergence and fails the build, printing the offending paths.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import ENGINE_TIER_COUNTERS  # noqa: E402

#: The decisions block's engine-tier tallies carry two extra names beyond
#: the ``PipelineStats`` counters: memo bail-out and unsupported-fallback
#: decisions, which by design differ across engine tiers.
SCRUBBED = frozenset(ENGINE_TIER_COUNTERS) | {
    "memo_bailouts", "memo_unsupported",
}


def scrub(node):
    """Zero engine-tier counters anywhere in the report tree."""
    if isinstance(node, dict):
        return {
            key: 0 if key in SCRUBBED else scrub(value)
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [scrub(item) for item in node]
    return node


def diff_paths(a, b, path="$", out=None) -> list[str]:
    """Paths where the scrubbed trees differ (bounded, for the log)."""
    if out is None:
        out = []
    if len(out) >= 20:
        return out
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                out.append(f"{path}.{key}: only in one report")
            else:
                diff_paths(a[key], b[key], f"{path}.{key}", out)
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} vs {len(b)}")
        else:
            for index, (x, y) in enumerate(zip(a, b)):
                diff_paths(x, y, f"{path}[{index}]", out)
    elif a != b:
        out.append(f"{path}: {a!r} vs {b!r}")
    return out


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    reports = []
    for arg in argv:
        try:
            reports.append(scrub(json.loads(Path(arg).read_text())))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"check_report_identity: cannot read {arg}: {exc}",
                  file=sys.stderr)
            return 1
    reference, candidate = reports
    if reference == candidate:
        print(f"identical modulo engine-tier counters: {argv[0]} == {argv[1]}")
        return 0
    print(f"REPORTS DIVERGE: {argv[0]} vs {argv[1]}", file=sys.stderr)
    for path in diff_paths(reference, candidate):
        print(f"  {path}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
